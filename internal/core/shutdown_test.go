package core

import (
	"testing"

	"repro/internal/workload"
)

// After a run drains, the long-lived service processes (device drivers,
// backend accept loops, dispatchers, the mapper) are parked with nothing
// pending — the kernel reports them as blocked, and nothing else leaks.
func TestRunLeavesOnlyServiceProcessesParked(t *testing.T) {
	cfg := Config{Seed: 2, Nodes: twoGPUNode(), Mode: ModeStrings, Balance: "GMin", DevPolicy: "LAS"}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Run(gaStream(4))
	if err != nil || len(r.Errors) > 0 {
		t.Fatalf("run: %v %v", err, r.Errors)
	}
	blocked := c.K.Blocked()
	for _, name := range blocked {
		switch {
		case hasPrefix(name, "gpu"), hasPrefix(name, "backend-"),
			hasPrefix(name, "devsched-"), name == "affinity-mapper",
			name == "sim-timers":
			// expected long-lived services
		case hasPrefix(name, "bt-"):
			t.Fatalf("backend thread %q leaked past its app's exit", name)
		default:
			t.Fatalf("unexpected parked process %q (all: %v)", name, blocked)
		}
	}
}

func hasPrefix(s, p string) bool {
	return len(s) >= len(p) && s[:len(p)] == p
}

// Rain backend processes exit with their application; none may linger.
func TestRainBackendsExitWithApps(t *testing.T) {
	cfg := Config{Seed: 2, Nodes: twoGPUNode(), Mode: ModeRain, Balance: "GMin"}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Run([]workload.StreamSpec{{
		Kind: workload.Gaussian, Count: 4, LambdaFactor: 0.6,
		Node: 0, Tenant: 1, Weight: 1,
	}})
	if err != nil || len(r.Errors) > 0 {
		t.Fatalf("run: %v %v", err, r.Errors)
	}
	for _, name := range c.K.Blocked() {
		if hasPrefix(name, "rain-") {
			t.Fatalf("rain backend %q leaked", name)
		}
	}
}
