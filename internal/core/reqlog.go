package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
	"repro/internal/workload"
)

// RequestEvent is the per-request record of one served (or failed) end-user
// request: identity, placement, and the full latency breakdown. The request
// log is the raw material for latency analysis beyond the figures' averages
// (tail percentiles, per-device load reconstruction, trace replay).
type RequestEvent struct {
	AppID  int            `json:"app"`
	Kind   workload.Kind  `json:"-"`
	KindID string         `json:"kind"`
	Style  workload.Style `json:"-"`
	StyleN string         `json:"style"`
	Tenant int64          `json:"tenant"`
	Node   int            `json:"node"`

	// GID is the gPool device the request was bound to (-1 if it failed
	// before binding).
	GID int `json:"gid"`

	SubmittedUS int64 `json:"submitted_us"`
	StartedUS   int64 `json:"started_us"`
	FinishedUS  int64 `json:"finished_us"`

	// QueueUS is arrival-to-first-instruction; ServiceUS is the rest.
	QueueUS   int64 `json:"queue_us"`
	ServiceUS int64 `json:"service_us"`

	Err string `json:"err,omitempty"`
}

// CompletionTime returns the request's arrival-to-completion latency.
func (e RequestEvent) CompletionTime() sim.Time {
	return sim.Time(e.FinishedUS - e.SubmittedUS)
}

// recordRequest appends a request event to the owning environment's log.
func (e *shardEnv) recordRequest(app *workload.App, s workload.StreamSpec, gid int, errStr string) {
	ev := RequestEvent{
		AppID:  app.ID,
		Kind:   s.Kind,
		KindID: s.Kind.String(),
		Style:  s.Style,
		StyleN: s.Style.String(),
		Tenant: s.Tenant,
		Node:   s.Node,
		GID:    gid,
		Err:    errStr,

		SubmittedUS: int64(app.Submitted),
		StartedUS:   int64(app.Started),
		FinishedUS:  int64(app.Finished),
	}
	if app.Started >= app.Submitted {
		ev.QueueUS = int64(app.Started - app.Submitted)
	}
	if app.Finished >= app.Started {
		ev.ServiceUS = int64(app.Finished - app.Started)
	}
	e.results.Requests = append(e.results.Requests, ev)
}

// SortedRequests returns the request log ordered by submission time (then
// app id), regardless of completion order.
func (r *RunResult) SortedRequests() []RequestEvent {
	out := append([]RequestEvent(nil), r.Requests...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].SubmittedUS != out[j].SubmittedUS {
			return out[i].SubmittedUS < out[j].SubmittedUS
		}
		return out[i].AppID < out[j].AppID
	})
	return out
}

// WriteRequestLog emits the request log as JSON Lines, one event per line,
// in submission order.
func (r *RunResult) WriteRequestLog(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range r.SortedRequests() {
		if err := enc.Encode(ev); err != nil {
			return fmt.Errorf("core: request log: %w", err)
		}
	}
	return nil
}

// ReadRequestLog parses a JSON Lines request log back into events.
func ReadRequestLog(rd io.Reader) ([]RequestEvent, error) {
	var out []RequestEvent
	dec := json.NewDecoder(rd)
	for dec.More() {
		var ev RequestEvent
		if err := dec.Decode(&ev); err != nil {
			return nil, fmt.Errorf("core: request log: %w", err)
		}
		out = append(out, ev)
	}
	return out, nil
}
