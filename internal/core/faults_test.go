package core

import (
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/interpose"
	"repro/internal/sim"
	"repro/internal/workload"
)

// recovered returns a recovery config suited to the short test workloads.
func testRecovery() interpose.Recovery {
	return interpose.Recovery{CallTimeout: 30 * sim.Second}
}

// faultRun executes a Strings supernode run with the given plan and
// recovery, without the no-error assertions of mustRun (faults may lose
// requests, but must never produce Errors).
func faultRun(t *testing.T, seed int64, plan faults.Plan, streams []workload.StreamSpec) *RunResult {
	t.Helper()
	c, err := New(Config{
		Seed: seed, Nodes: supernode(), Mode: ModeStrings, Balance: "GMin",
		Faults: plan, Recovery: testRecovery(),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	r, err := c.Run(streams)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(r.Errors) > 0 {
		t.Fatalf("fault run produced hard errors (Lost should absorb them): %v", r.Errors)
	}
	return r
}

func faultStreams(n int) []workload.StreamSpec {
	return []workload.StreamSpec{
		{Kind: workload.MonteCarlo, Count: n, LambdaFactor: 0.5, Node: 0, Tenant: 1, Weight: 1},
		{Kind: workload.Gaussian, Count: n, LambdaFactor: 0.5, Node: 1, Tenant: 2, Weight: 1},
	}
}

// TestNodeKillMidRunRecovers kills node 1 mid-run: every request must be
// accounted for exactly once (no double-counting), in-flight work fails over
// to node 0's survivors, and at least one request finishes after the kill.
func TestNodeKillMidRunRecovers(t *testing.T) {
	// Establish the healthy makespan first, then kill at its midpoint.
	base := faultRun(t, 7, faults.Plan{}, faultStreams(4))
	if base.Lost != 0 || base.Recovered != 0 {
		t.Fatalf("healthy run reported Lost=%d Recovered=%d", base.Lost, base.Recovered)
	}
	killAt := base.EndTime / 2

	r := faultRun(t, 7, faults.Plan{Faults: []faults.Fault{
		{At: killAt, Kind: faults.KillNode, Node: 1},
	}}, faultStreams(4))

	if r.Launched != 8 {
		t.Fatalf("Launched = %d, want 8", r.Launched)
	}
	if r.Finished+r.Lost != r.Launched {
		t.Fatalf("accounting broken: Finished %d + Lost %d != Launched %d",
			r.Finished, r.Lost, r.Launched)
	}
	if r.Finished == 0 {
		t.Fatal("no request survived the node kill")
	}
	// The request log must agree with the counters: exactly one row per
	// launched request, failed rows carrying errors.
	if len(r.Requests) != r.Launched {
		t.Fatalf("request log has %d rows for %d launches", len(r.Requests), r.Launched)
	}
	failedRows := 0
	for _, ev := range r.Requests {
		if ev.Err != "" {
			failedRows++
		}
	}
	if failedRows != r.Lost {
		t.Fatalf("request log has %d failed rows, counters say Lost=%d", failedRows, r.Lost)
	}
	finishedAfter := 0
	for _, ev := range r.Requests {
		if ev.Err == "" && sim.Time(ev.FinishedUS) > killAt {
			finishedAfter++
		}
	}
	if finishedAfter == 0 {
		t.Fatal("no request completed after the kill: the pool never recovered")
	}
}

// TestDeadNodeSpilloverReroutesArrivals kills node 1 before any work
// arrives: every request must land on node 0's GPUs and finish.
func TestDeadNodeSpilloverReroutesArrivals(t *testing.T) {
	r := faultRun(t, 3, faults.Plan{Faults: []faults.Fault{
		{At: 1, Kind: faults.KillNode, Node: 1},
	}}, faultStreams(3))
	if r.Finished+r.Lost != r.Launched {
		t.Fatalf("accounting broken: %d + %d != %d", r.Finished, r.Lost, r.Launched)
	}
	if r.Finished == 0 {
		t.Fatal("nothing finished with half the pool dead from the start")
	}
	// Completed requests must all have run on node 0's GIDs (0 and 1).
	for _, ev := range r.Requests {
		if ev.Err == "" && ev.GID >= 2 {
			// A request bound to node 1 before the kill landed may legally
			// fail over; but finishing ON a dead GID means the detector and
			// spillover never engaged.
			if sim.Time(ev.SubmittedUS) > sim.Time(1) {
				t.Fatalf("request submitted after the kill completed on dead GID %d", ev.GID)
			}
		}
	}
}

// TestGPUKillVsNodeKill kills a single GPU: strictly less disruptive than
// killing the whole node, and the pool still completes everything it can.
func TestGPUKillVsNodeKill(t *testing.T) {
	base := faultRun(t, 5, faults.Plan{}, faultStreams(3))
	killAt := base.EndTime / 2
	r := faultRun(t, 5, faults.Plan{Faults: []faults.Fault{
		{At: killAt, Kind: faults.KillGPU, GID: 3},
	}}, faultStreams(3))
	if r.Finished+r.Lost != r.Launched {
		t.Fatalf("accounting broken: %d + %d != %d", r.Finished, r.Lost, r.Launched)
	}
	if r.Finished < base.Finished-base.Launched/2 {
		t.Fatalf("single-GPU kill lost most of the run: finished %d of %d", r.Finished, r.Launched)
	}
}

// TestStallAndDegradeDelayButComplete injects the transient faults: a stall
// and a service-time degradation must delay the run, not break it.
func TestStallAndDegradeDelayButComplete(t *testing.T) {
	base := faultRun(t, 9, faults.Plan{}, faultStreams(2))
	r := faultRun(t, 9, faults.Plan{Faults: []faults.Fault{
		{At: base.EndTime / 4, Kind: faults.StallGPU, GID: 0, Dur: 2 * sim.Second},
		{At: base.EndTime / 4, Kind: faults.DegradeGPU, GID: 1, Factor: 2.0},
	}}, faultStreams(2))
	if r.Lost != 0 {
		t.Fatalf("transient faults lost %d requests", r.Lost)
	}
	if r.Finished != r.Launched {
		t.Fatalf("finished %d of %d under transient faults", r.Finished, r.Launched)
	}
	if r.EndTime <= base.EndTime {
		t.Fatalf("stall+degrade did not extend the run: %v vs %v", r.EndTime, base.EndTime)
	}
}

// TestFaultRunDeterminism runs the same seeded fault scenario twice and
// demands identical results, including the full request log.
func TestFaultRunDeterminism(t *testing.T) {
	base := faultRun(t, 11, faults.Plan{}, faultStreams(3))
	plan := faults.Plan{
		Faults: []faults.Fault{{At: base.EndTime / 2, Kind: faults.KillNode, Node: 1}},
		Seed:   5,
		Jitter: sim.Second,
	}
	a := faultRun(t, 11, plan, faultStreams(3))
	b := faultRun(t, 11, plan, faultStreams(3))
	if a.Launched != b.Launched || a.Finished != b.Finished ||
		a.Lost != b.Lost || a.Recovered != b.Recovered || a.EndTime != b.EndTime {
		t.Fatalf("counters diverged: %+v vs %+v", a, b)
	}
	if !reflect.DeepEqual(a.SortedRequests(), b.SortedRequests()) {
		t.Fatal("request logs diverged between identical seeded fault runs")
	}
}

// TestFaultsIgnoredInCUDAMode documents the config contract: fault plans
// only apply to the remoting generations.
func TestFaultsIgnoredInCUDAMode(t *testing.T) {
	c, err := New(Config{
		Seed: 1, Nodes: twoGPUNode(), Mode: ModeCUDA,
		Faults: faults.Plan{Faults: []faults.Fault{{At: 1, Kind: faults.KillNode, Node: 0}}},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	r, err := c.Run(gaStream(3))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r.Finished != 3 || r.Lost != 0 {
		t.Fatalf("CUDA-mode run with a fault plan: %+v", r)
	}
}
