package core

import (
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// TestReusedKernelAndSharedTracesReproduceFreshRun is the core-level reuse
// guarantee the sweep engine depends on: a cluster built on a recycled
// kernel (Config.Kernel) with a shared trace cache (Config.Traces) must
// produce a RunResult deeply equal to a cluster built from scratch.
func TestReusedKernelAndSharedTracesReproduceFreshRun(t *testing.T) {
	streams := []workload.StreamSpec{
		{Kind: workload.Gaussian, Count: 4, Lambda: sim.Second / 2, Node: 0, Tenant: 1, Weight: 1},
		{Kind: workload.MonteCarlo, Count: 4, LambdaFactor: 0.5, Node: 0, Tenant: 2, Weight: 2},
	}
	cfgs := []Config{
		{Seed: 3, Nodes: twoGPUNode(), Mode: ModeCUDA},
		{Seed: 3, Nodes: twoGPUNode(), Mode: ModeRain, Balance: "GMin"},
		{Seed: 3, Nodes: supernode(), Mode: ModeStrings, Balance: "GMin", DevPolicy: "TFS"},
	}

	fresh := make([]*RunResult, len(cfgs))
	for i, cfg := range cfgs {
		fresh[i] = mustRun(t, cfg, streams)
	}

	// One kernel and one trace book recycled across all three runs — the
	// sweep worker's steady state. Pollution from each run must not leak
	// into the next.
	k := sim.NewKernel(999)
	book := workload.NewTraceBook()
	for i, cfg := range cfgs {
		cfg.Kernel = k
		cfg.Traces = book
		got := mustRun(t, cfg, streams)
		if !reflect.DeepEqual(got, fresh[i]) {
			t.Errorf("config %d (%v): reused-kernel run diverged from fresh run", i, cfg.Mode)
		}
	}
	if book.Len() == 0 {
		t.Error("trace book unused: arrivals were regenerated per run")
	}
}
