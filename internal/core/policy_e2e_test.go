package core

import (
	"strings"
	"testing"

	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/interpose"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestWeightedTFSDeliversProportionalService(t *testing.T) {
	// Tenant 1 (weight 3) and tenant 2 (weight 1) stream the same
	// saturating class at one GPU. Weight enforcement is bounded by the
	// granularity of in-flight asynchronous work (the Dispatcher gates
	// submission, not execution), so the delivered ratio approaches — but
	// does not exactly reach — the 3:1 target; the equal-weight control
	// run pins the attribution on the weights.
	oneGPU := []NodeConfig{{Devices: []gpu.Spec{gpu.TeslaC2050}}}
	ratio := func(w1 int) float64 {
		cfg := Config{Seed: 4, Nodes: oneGPU, Mode: ModeStrings, Balance: "GRR", DevPolicy: "TFS"}
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		streams := []workload.StreamSpec{
			{Kind: workload.MonteCarlo, Count: 40, Lambda: sim.Second / 2, Node: 0, Tenant: 1, Weight: w1},
			{Kind: workload.MonteCarlo, Count: 40, Lambda: sim.Second / 2, Node: 0, Tenant: 2, Weight: 1},
		}
		r, err := c.RunUntil(streams, 40*sim.Second)
		if err != nil {
			t.Fatal(err)
		}
		s1, s2 := r.TenantService[1], r.TenantService[2]
		if s1 == 0 || s2 == 0 {
			t.Fatalf("tenants starved: %v, %v", s1, s2)
		}
		return float64(s1) / float64(s2)
	}
	weighted := ratio(3)
	equal := ratio(1)
	if weighted < 1.8 || weighted > 4.0 {
		t.Fatalf("weighted service ratio %.2f, want ≈3 (weights 3:1)", weighted)
	}
	if equal < 0.8 || equal > 1.25 {
		t.Fatalf("equal-weight control ratio %.2f, want ≈1", equal)
	}
	if weighted < equal+0.5 {
		t.Fatalf("weights had no effect: %.2f vs control %.2f", weighted, equal)
	}
}

func TestLASFavorsShortEpisodes(t *testing.T) {
	// A long-kernel class (DC) and a short-episode class (GA) share one
	// GPU under heavy load: LAS should cut GA's completion relative to the
	// ungated runtime without destroying DC.
	oneGPU := []NodeConfig{{Devices: []gpu.Spec{gpu.TeslaC2050}}}
	streams := []workload.StreamSpec{
		{Kind: workload.DXTC, Count: 5, LambdaFactor: 0.4, Node: 0, Tenant: 1, Weight: 1},
		{Kind: workload.Gaussian, Count: 10, LambdaFactor: 0.4, Node: 0, Tenant: 2, Weight: 1},
	}
	avg := func(devPol string) (sim.Time, sim.Time) {
		cfg := Config{Seed: 8, Nodes: oneGPU, Mode: ModeStrings, Balance: "GRR", DevPolicy: devPol}
		r := mustRun(t, cfg, streams)
		return r.AvgCompletion(workload.Gaussian), r.AvgCompletion(workload.DXTC)
	}
	gaNone, dcNone := avg("none")
	gaLAS, dcLAS := avg("LAS")
	if gaLAS > gaNone {
		t.Fatalf("LAS worsened the short class: %v > %v", gaLAS, gaNone)
	}
	if float64(dcLAS) > 1.5*float64(dcNone) {
		t.Fatalf("LAS crushed the long class: %v vs %v", dcLAS, dcNone)
	}
}

func TestPipelinedStreamsUnderStrings(t *testing.T) {
	cfg := Config{Seed: 5, Nodes: twoGPUNode(), Mode: ModeStrings, Balance: "GMin"}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Run([]workload.StreamSpec{{
		Kind: workload.MonteCarlo, Count: 4, LambdaFactor: 0.5,
		Node: 0, Tenant: 1, Weight: 1, Style: workload.StylePipelined,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Errors) > 0 {
		t.Fatalf("pipelined apps failed under Strings: %v", r.Errors)
	}
	if r.Finished != 4 {
		t.Fatalf("finished %d of 4", r.Finished)
	}
}

func TestGMinKeepsTransferHeavyStreamsLocal(t *testing.T) {
	// MC requests arrive at node 0 of a supernode: GMin's local tie-break
	// should put more of its heavy traffic on node 0's devices than node
	// 1's.
	cfg := Config{Seed: 6, Nodes: supernode(), Mode: ModeStrings, Balance: "GMin"}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Run([]workload.StreamSpec{{
		Kind: workload.MonteCarlo, Count: 6, LambdaFactor: 0.8,
		Node: 0, Tenant: 1, Weight: 1,
	}})
	if err != nil || len(r.Errors) > 0 {
		t.Fatalf("run: %v %v", err, r.Errors)
	}
	local := c.Devices()[0].Stats().CopiesDone + c.Devices()[1].Stats().CopiesDone
	remote := c.Devices()[2].Stats().CopiesDone + c.Devices()[3].Stats().CopiesDone
	if local <= remote {
		t.Fatalf("local copies %d not above remote %d under GMin", local, remote)
	}
}

func TestPercentileCompletion(t *testing.T) {
	cfg := Config{Seed: 2, Nodes: twoGPUNode(), Mode: ModeStrings, Balance: "GMin"}
	r := mustRun(t, cfg, gaStream(6))
	p50 := r.PercentileCompletion(workload.Gaussian, 0.5)
	p95 := r.PercentileCompletion(workload.Gaussian, 0.95)
	if p50 <= 0 || p95 < p50 {
		t.Fatalf("percentiles p50=%v p95=%v", p50, p95)
	}
	if r.PercentileCompletion(workload.DXTC, 0.5) != 0 {
		t.Fatal("percentile of absent class should be 0")
	}
}

func TestCrossModeDeterminismMatrix(t *testing.T) {
	streams := []workload.StreamSpec{
		{Kind: workload.MonteCarlo, Count: 4, LambdaFactor: 0.5, Node: 0, Tenant: 1, Weight: 1},
		{Kind: workload.Gaussian, Count: 4, LambdaFactor: 0.5, Node: 0, Tenant: 2, Weight: 1},
	}
	type combo struct {
		mode Mode
		bal  string
		dev  string
	}
	combos := []combo{
		{ModeCUDA, "", ""},
		{ModeRain, "GMin", "TFS"},
		{ModeRain, "GWtMin", "LAS"},
		{ModeStrings, "GRR", "PS"},
		{ModeStrings, "MBF", "LAS"},
		{ModeStrings, "DTF", "TFS"},
	}
	for _, cb := range combos {
		cb := cb
		run := func() sim.Time {
			cfg := Config{Seed: 17, Nodes: twoGPUNode(), Mode: cb.mode,
				Balance: cb.bal, DevPolicy: cb.dev}
			r := mustRun(t, cfg, streams)
			return r.AvgCompletion(workload.MonteCarlo) + r.AvgCompletion(workload.Gaussian)
		}
		if a, b := run(), run(); a != b {
			t.Fatalf("%v/%s/%s diverged: %v vs %v", cb.mode, cb.bal, cb.dev, a, b)
		}
	}
}

func TestMultiThreadedAppsAcrossModes(t *testing.T) {
	streams := []workload.StreamSpec{{
		Kind: workload.SortingNetworks, Count: 3, LambdaFactor: 0.6,
		Node: 0, Tenant: 1, Weight: 1, Style: workload.StyleMultiThread,
	}}
	for _, mode := range []Mode{ModeCUDA, ModeRain, ModeStrings} {
		cfg := Config{Seed: 9, Nodes: twoGPUNode(), Mode: mode, Balance: "GMin"}
		r := mustRun(t, cfg, streams)
		if got := len(r.Completions[workload.SortingNetworks]); got != 3 {
			t.Fatalf("%v: completions = %d", mode, got)
		}
	}
}

func TestMultiThreadedLeavesNoMemory(t *testing.T) {
	cfg := Config{Seed: 9, Nodes: twoGPUNode(), Mode: ModeStrings, Balance: "GMin"}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Run([]workload.StreamSpec{{
		Kind: workload.MonteCarlo, Count: 2, LambdaFactor: 0.6,
		Node: 0, Tenant: 1, Weight: 1, Style: workload.StyleMultiThread,
	}})
	if err != nil || len(r.Errors) > 0 {
		t.Fatalf("run: %v %v", err, r.Errors)
	}
	for _, d := range c.Devices() {
		if d.MemUsed() != 0 {
			t.Fatalf("device %d leaked %d bytes", d.ID(), d.MemUsed())
		}
	}
}

func TestRequestLogRoundTrip(t *testing.T) {
	cfg := Config{Seed: 2, Nodes: twoGPUNode(), Mode: ModeStrings, Balance: "GRR"}
	r := mustRun(t, cfg, gaStream(5))
	if len(r.Requests) != 5 {
		t.Fatalf("request events = %d", len(r.Requests))
	}
	sorted := r.SortedRequests()
	var prev int64 = -1
	gids := map[int]bool{}
	for _, ev := range sorted {
		if ev.SubmittedUS < prev {
			t.Fatal("not sorted by submission")
		}
		prev = ev.SubmittedUS
		if ev.FinishedUS < ev.StartedUS || ev.StartedUS < ev.SubmittedUS {
			t.Fatalf("time order broken: %+v", ev)
		}
		if ev.QueueUS+ev.ServiceUS != ev.FinishedUS-ev.SubmittedUS {
			t.Fatalf("latency breakdown inconsistent: %+v", ev)
		}
		if ev.KindID != "GA" || ev.Err != "" {
			t.Fatalf("event fields: %+v", ev)
		}
		gids[ev.GID] = true
	}
	if !gids[0] || !gids[1] {
		t.Fatalf("GRR should have touched both GIDs: %v", gids)
	}
	var buf strings.Builder
	if err := r.WriteRequestLog(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRequestLog(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 5 || back[0].KindID != "GA" {
		t.Fatalf("round trip = %d events, first %+v", len(back), back[0])
	}
}

func TestEventsThroughFullStringsStack(t *testing.T) {
	// Drive CUDA events end to end: interposer → wire → backend thread →
	// Context Packer (AST retargets the default-stream records onto the
	// app's dedicated stream) → device markers.
	cfg := Config{Seed: 3, Nodes: twoGPUNode(), Mode: ModeStrings, Balance: "GRR"}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var elapsed sim.Time
	var evErr error
	c.K.Go("event-app", func(p *sim.Proc) {
		ip := interpose.New(c, p, 991, 1, 1, "EVT", 0, true)
		if evErr = ip.SetDevice(0); evErr != nil {
			return
		}
		start, err := ip.EventCreate()
		if err != nil {
			evErr = err
			return
		}
		end, err := ip.EventCreate()
		if err != nil {
			evErr = err
			return
		}
		ip.EventRecord(start, cuda.DefaultStream)
		ip.Launch(cuda.Kernel{Name: "timed", Compute: 103e6}, cuda.DefaultStream)
		ip.EventRecord(end, cuda.DefaultStream)
		if evErr = ip.EventSynchronize(end); evErr != nil {
			return
		}
		elapsed, evErr = ip.EventElapsed(start, end)
		if evErr != nil {
			return
		}
		evErr = ip.ThreadExit()
	})
	c.K.Run()
	if evErr != nil {
		t.Fatalf("event flow failed: %v", evErr)
	}
	// 103e6 compute units on the Quadro 2000 (480e3 units/us) ≈ 215us;
	// the device-side measurement includes launch latency only.
	if elapsed < 200 || elapsed > 260 {
		t.Fatalf("measured kernel time %v, want ≈215us", elapsed)
	}
}

func TestEventsUnderRainMode(t *testing.T) {
	cfg := Config{Seed: 3, Nodes: twoGPUNode(), Mode: ModeRain, Balance: "GRR"}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var elapsed sim.Time
	var evErr error
	c.K.Go("event-app", func(p *sim.Proc) {
		ip := interpose.New(c, p, 993, 1, 1, "EVT", 0, false)
		start, err := ip.EventCreate()
		if err != nil {
			evErr = err
			return
		}
		end, _ := ip.EventCreate()
		ip.EventRecord(start, cuda.DefaultStream)
		ip.Launch(cuda.Kernel{Compute: 48e6}, cuda.DefaultStream) // 100us on Quadro2000
		ip.EventRecord(end, cuda.DefaultStream)
		if evErr = ip.EventSynchronize(end); evErr != nil {
			return
		}
		elapsed, evErr = ip.EventElapsed(start, end)
		if evErr == nil {
			evErr = ip.ThreadExit()
		}
	})
	c.K.Run()
	if evErr != nil {
		t.Fatalf("Rain event flow failed: %v", evErr)
	}
	if elapsed < 90 || elapsed > 130 {
		t.Fatalf("measured %v, want ≈100us", elapsed)
	}
}
