package core

import (
	"repro/internal/sim"
)

// The cluster is the fault injector's target: faults flip per-GID state
// that the backend serve loops consult. Nothing here feeds the failure
// detector directly — upstream health tracking is driven purely by the
// frontends' call timeouts, the same signal a real deployment has.

// KillGPU implements faults.Target: the backend serving gid stops replying
// permanently. Calls in flight lose their replies; queued and future calls
// are swallowed.
func (c *Cluster) KillGPU(gid int) {
	if gid < 0 || gid >= len(c.gpuDown) {
		return
	}
	c.gpuDown[gid] = true
}

// KillNode implements faults.Target: every GPU on the node dies.
func (c *Cluster) KillNode(node int) {
	for _, e := range c.gmap.Entries() {
		if e.Node == node {
			c.KillGPU(int(e.GID))
		}
	}
}

// StallGPU implements faults.Target: the backend freezes for d — calls hang
// and then service resumes (a driver hiccup, not a crash).
func (c *Cluster) StallGPU(gid int, d sim.Time) {
	if gid < 0 || gid >= len(c.stallUntil) || d <= 0 {
		return
	}
	until := c.K.Now() + d
	if until > c.stallUntil[gid] {
		c.stallUntil[gid] = until
	}
}

// DegradeGPU implements faults.Target: every subsequent call on gid takes
// factor times as long (thermal throttling, ECC scrubbing, a sick device).
func (c *Cluster) DegradeGPU(gid int, factor float64) {
	if gid < 0 || gid >= len(c.degrade) || factor <= 1 {
		return
	}
	c.degrade[gid] = factor
}

// GPUDown reports whether gid's backend has been killed.
func (c *Cluster) GPUDown(gid int) bool {
	return gid >= 0 && gid < len(c.gpuDown) && c.gpuDown[gid]
}

// faultGate applies the injected fault state to one received call on gid:
// a killed backend swallows it (true = discard, no reply will ever come), a
// stalled backend freezes the serving process until the stall lifts. All
// checks are nil-cost in fault-free runs.
func (c *Cluster) faultGate(p *sim.Proc, gid int) bool {
	if c.gpuDown[gid] {
		return true
	}
	if until := c.stallUntil[gid]; until > p.Now() {
		p.Sleep(until - p.Now())
		if c.gpuDown[gid] {
			return true
		}
	}
	return false
}

// degradePenalty charges the injected service-time multiplier for a call
// that took dt to execute.
func (c *Cluster) degradePenalty(p *sim.Proc, gid int, dt sim.Time) {
	if f := c.degrade[gid]; f > 1 && dt > 0 {
		p.Sleep(sim.Time(float64(dt) * (f - 1)))
	}
}
