package core

import (
	"reflect"
	"testing"

	"repro/internal/gpu"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// shardedScenario is a supernode run with traffic on both nodes so the
// balancer routes frontends to cross-shard backends: the full mailbox
// machinery (select round trips, cross-kernel conns, feedback relays) is on
// the hot path.
func shardedScenario() []workload.StreamSpec {
	return []workload.StreamSpec{
		{Kind: workload.Gaussian, Count: 6, Lambda: 40 * sim.Millisecond, Node: 0, Tenant: 1, Weight: 1},
		{Kind: workload.BlackScholes, Count: 6, Lambda: 30 * sim.Millisecond, Node: 1, Tenant: 2, Weight: 2},
		{Kind: workload.Gaussian, Count: 4, Lambda: 25 * sim.Millisecond, Node: 1, Tenant: 3, Weight: 1,
			Style: workload.StyleMultiThread},
	}
}

// runShardedOnce runs the scenario at a shard worker count and returns the
// results plus the concatenated JSONL trace bytes.
func runShardedOnce(t *testing.T, mode Mode, shards int) (*RunResult, []byte, *Cluster) {
	t.Helper()
	cfg := Config{
		Seed: 11, Nodes: supernode(), Mode: mode,
		Balance: "GMin", DevPolicy: "TFS",
		Recorder: trace.New(), Shards: shards,
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New(shards=%d): %v", shards, err)
	}
	defer c.Close()
	r, err := c.Run(shardedScenario())
	if err != nil {
		t.Fatalf("Run(shards=%d): %v", shards, err)
	}
	if len(r.Errors) > 0 {
		t.Fatalf("shards=%d: application errors: %v", shards, r.Errors)
	}
	var jsonl []byte
	for _, rec := range c.Recorders() {
		jsonl = rec.Snapshot().AppendJSONL(jsonl)
	}
	return r, jsonl, c
}

func TestShardInvarianceStrings(t *testing.T) {
	ref, refJSONL, refC := runShardedOnce(t, ModeStrings, 1)
	if !refC.Sharded() {
		t.Fatal("supernode Strings run did not shard")
	}
	if ref.Finished != ref.Launched || ref.Launched != 16 {
		t.Fatalf("reference run: finished %d of %d (want 16)", ref.Finished, ref.Launched)
	}
	refStats := refC.ShardStats()
	if refStats.Messages == 0 {
		t.Fatalf("no cross-shard messages — scenario does not exercise the mailboxes: %+v", refStats)
	}
	for _, n := range []int{2, 4, 8} {
		got, gotJSONL, c := runShardedOnce(t, ModeStrings, n)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("shards=%d: results diverged from shards=1", n)
		}
		if string(gotJSONL) != string(refJSONL) {
			t.Fatalf("shards=%d: JSONL trace bytes diverged from shards=1", n)
		}
		if s := c.ShardStats(); !reflect.DeepEqual(s, refStats) {
			t.Fatalf("shards=%d: stats diverged: %+v vs %+v", n, s, refStats)
		}
	}
}

func TestShardInvarianceRain(t *testing.T) {
	ref, refJSONL, _ := runShardedOnce(t, ModeRain, 1)
	got, gotJSONL, _ := runShardedOnce(t, ModeRain, 4)
	if !reflect.DeepEqual(got, ref) {
		t.Fatal("Rain results diverged across shard counts")
	}
	if string(gotJSONL) != string(refJSONL) {
		t.Fatal("Rain JSONL trace bytes diverged across shard counts")
	}
}

func TestShardInvarianceCUDA(t *testing.T) {
	ref, _, refC := runShardedOnce(t, ModeCUDA, 1)
	if !refC.Sharded() {
		t.Fatal("CUDA supernode run did not shard")
	}
	got, _, _ := runShardedOnce(t, ModeCUDA, 2)
	if !reflect.DeepEqual(got, ref) {
		t.Fatal("CUDA results diverged across shard counts")
	}
}

func TestShardCollapseRules(t *testing.T) {
	base := Config{Seed: 1, Mode: ModeStrings, Shards: 4}

	single := base
	single.Nodes = twoGPUNode()
	c, err := New(single)
	if err != nil {
		t.Fatal(err)
	}
	if c.Sharded() {
		t.Fatal("single-node cluster must collapse to the single kernel")
	}

	mig := base
	mig.Nodes = []NodeConfig{
		{Devices: []gpu.Spec{gpu.TeslaC2050.WithMIG(), gpu.TeslaC2050.WithMIG()}},
		{Devices: []gpu.Spec{gpu.TeslaC2050.WithMIG(), gpu.TeslaC2050.WithMIG()}},
	}
	c, err = New(mig)
	if err != nil {
		t.Fatal(err)
	}
	if c.Sharded() {
		t.Fatal("partitionable fleet must collapse to the single kernel")
	}

	off := base
	off.Nodes = supernode()
	off.Shards = 0
	c, err = New(off)
	if err != nil {
		t.Fatal(err)
	}
	if c.Sharded() {
		t.Fatal("Shards=0 must keep the single-kernel path")
	}

	on := base
	on.Nodes = supernode()
	c, err = New(on)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.Sharded() {
		t.Fatal("supernode with Shards=4 must shard")
	}
	if got := c.ShardStats().Lookahead; got != c.Config().RemoteLink.Latency {
		t.Fatalf("lookahead %v, want the remote-link latency %v", got, c.Config().RemoteLink.Latency)
	}
}

func TestShardedRunUntilAccounting(t *testing.T) {
	streams := []workload.StreamSpec{
		{Kind: workload.Gaussian, Count: 400, Lambda: 3 * sim.Millisecond, Node: 0, Tenant: 1, Weight: 1},
		{Kind: workload.Gaussian, Count: 400, Lambda: 3 * sim.Millisecond, Node: 1, Tenant: 2, Weight: 1},
	}
	run := func(shards int) *RunResult {
		cfg := Config{Seed: 5, Nodes: supernode(), Mode: ModeStrings, Balance: "GMin", Shards: shards}
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		r, err := c.RunUntil(streams, 2*sim.Second)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	ref := run(1)
	if len(ref.TenantService) != 2 {
		t.Fatalf("tenant service for %d tenants, want 2", len(ref.TenantService))
	}
	for id, svc := range ref.TenantService {
		if svc <= 0 {
			t.Fatalf("tenant %d received no service by the horizon", id)
		}
	}
	if got := run(4); !reflect.DeepEqual(got, ref) {
		t.Fatal("RunUntil results diverged across shard counts")
	}
}
