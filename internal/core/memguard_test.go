package core

import (
	"strings"
	"testing"

	"repro/internal/gpu"
	"repro/internal/sim"
	"repro/internal/workload"
)

// tinyGPU is a device whose memory only fits one application buffer at a
// time, so piled-up requests exhaust it without admission control.
func tinyGPU() []NodeConfig {
	spec := gpu.TeslaC2050
	spec.MemBytes = int64(workload.ProfileFor(workload.MonteCarlo).BufBytes) + (1 << 20)
	return []NodeConfig{{Devices: []gpu.Spec{spec}}}
}

// burst is a stream dense enough that several requests coexist.
func burst() []workload.StreamSpec {
	return []workload.StreamSpec{{
		Kind: workload.MonteCarlo, Count: 4, Lambda: sim.Second,
		Node: 0, Tenant: 1, Weight: 1,
	}}
}

func TestWithoutMemoryGuardBurstOOMs(t *testing.T) {
	c, err := New(Config{Seed: 2, Nodes: tinyGPU(), Mode: ModeStrings, Balance: "GRR"})
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Run(burst())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Errors) == 0 {
		t.Fatal("expected out-of-memory failures without the guard")
	}
	for _, e := range r.Errors {
		if !strings.Contains(e, "out of memory") {
			t.Fatalf("unexpected error: %s", e)
		}
	}
}

func TestMemoryGuardAdmitsBurst(t *testing.T) {
	c, err := New(Config{Seed: 2, Nodes: tinyGPU(), Mode: ModeStrings,
		Balance: "GRR", MemoryGuard: true})
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Run(burst())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Errors) > 0 {
		t.Fatalf("guarded run failed: %v", r.Errors)
	}
	if r.Finished != 4 {
		t.Fatalf("finished %d of 4", r.Finished)
	}
	// Memory never overshot capacity.
	if hw := c.Devices()[0].Stats().MemHighWater; hw > c.Devices()[0].Spec().MemBytes {
		t.Fatalf("high water %d exceeded capacity", hw)
	}
}

func TestMemoryGuardPreservesThroughputWhenUncontended(t *testing.T) {
	run := func(guard bool) sim.Time {
		cfg := Config{Seed: 3, Nodes: twoGPUNode(), Mode: ModeStrings,
			Balance: "GMin", MemoryGuard: guard}
		r := mustRun(t, cfg, gaStream(4))
		return r.AvgCompletion(workload.Gaussian)
	}
	if a, b := run(false), run(true); a != b {
		t.Fatalf("guard changed uncontended completion: %v vs %v", a, b)
	}
}
