// Package core assembles the complete Strings runtime over the simulated
// cluster: nodes with their GPUs, the gPool and gMap, the GPU Affinity
// Mapper service, per-GPU backend processes with the Context Packer and the
// device-level GPU Scheduler (Design III), and the two baselines the paper
// evaluates against — the bare CUDA runtime (static provisioning) and Rain
// (Design I: one backend process per application, no context packing).
package core

import (
	"fmt"

	"repro/internal/balancer"
	"repro/internal/cuda"
	"repro/internal/devsched"
	"repro/internal/faults"
	"repro/internal/gpu"
	"repro/internal/interpose"
	"repro/internal/packer"
	"repro/internal/remoting"
	"repro/internal/rpcproto"
	"repro/internal/sim"
	"repro/internal/sim/shard"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Mode selects which runtime serves applications' GPU work.
type Mode int

// Runtime modes.
const (
	// ModeCUDA is static provisioning on the bare CUDA runtime:
	// applications keep their programmed device, one GPU context per
	// process, no remoting, no scheduling.
	ModeCUDA Mode = iota
	// ModeRain is the authors' prior scheduler (Design I): GPU remoting and
	// workload balancing with one backend process per application, so
	// co-located applications still multiplex GPU contexts.
	ModeRain
	// ModeStrings is the paper's system (Design III): one backend process
	// per GPU hosting one backend thread per application, context packing
	// over per-application CUDA streams, and device-level scheduling.
	ModeStrings
)

// String returns the mode name used in the figures.
func (m Mode) String() string {
	switch m {
	case ModeCUDA:
		return "CUDA"
	case ModeRain:
		return "Rain"
	case ModeStrings:
		return "Strings"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// NodeConfig describes one server node.
type NodeConfig struct {
	Devices []gpu.Spec
}

// Config describes a full experimental setup.
type Config struct {
	Seed  int64
	Nodes []NodeConfig
	Mode  Mode

	// Balance names the workload-balancing policy (GRR, GMin, GWtMin, RTF,
	// GUF, DTF, MBF). Ignored in ModeCUDA.
	Balance string

	// DevPolicy names the device-level scheduling policy: "none", "TFS",
	// "LAS" or "PS". Ignored in ModeCUDA; "PS" is Strings-only.
	DevPolicy string

	Sched  devsched.Config
	CUDA   cuda.Config
	Packer packer.Config

	// LocalLink and RemoteLink override the RPC link models (zero values
	// select the package defaults).
	LocalLink  rpcproto.LinkSpec
	RemoteLink rpcproto.LinkSpec

	// Trace installs a utilization tracer on every device.
	Trace bool

	// Recorder, when non-nil, records virtual-time spans, events and
	// decision-audit records across the whole request path (see
	// internal/trace). Nil disables tracing with zero overhead.
	Recorder *trace.Recorder

	// MemoryGuard enables memory-pressure admission control in the Strings
	// backends: an application whose allocation would exceed device memory
	// waits for capacity instead of failing, removing the paper's
	// assumption that the arrival rate never exhausts device memory.
	MemoryGuard bool

	// Faults schedules deterministic backend failures (kill/stall/degrade a
	// node or GPU at a virtual time). The zero plan injects nothing and
	// adds zero events. Ignored in ModeCUDA (there is no remoting layer to
	// fail).
	Faults faults.Plan

	// Recovery arms the interposers' failure handling: per-call timeouts,
	// idempotent retransmits and failover to a surviving GPU. The zero
	// value disables it, leaving the frontend bit-identical to the
	// pre-fault-tolerance behaviour.
	Recovery interpose.Recovery

	// Kernel, when non-nil, is Reset(Seed) and reused instead of building a
	// fresh kernel — the sweep workers recycle kernels through a
	// parallel.KernelArena so back-to-back cells reuse the heap and ring
	// backing arrays. A reset kernel reproduces a fresh kernel's event
	// sequence exactly (see internal/sim reset tests), so this is purely an
	// allocation optimization.
	Kernel *sim.Kernel

	// Traces, when non-nil, memoizes materialized arrival traces so cells
	// that replay the same workload stream share one immutable slice
	// instead of regenerating it per run. Derivation is bit-identical to
	// the inline path (workload.StreamSeed).
	Traces *workload.TraceBook

	// Shards >= 1 partitions the cluster into one shard kernel per node,
	// composed under a conservative-lookahead coordinator
	// (internal/sim/shard) with Shards barrier workers; cross-node traffic
	// crosses shard mailboxes with the RemoteLink latency as the lookahead.
	// Results are bit-identical for every Shards >= 1 (the partition is
	// always per-node; Shards only sets the worker count), but the sharded
	// composition is a deliberately distinct model from the default
	// single-kernel path (Shards == 0): control messages that the single
	// kernel delivers instantly (feedback, failure reports) pay the physical
	// control-plane latency when they cross shards. Topologies the per-node
	// partition cannot express — a single node, partitionable (MIG) fleets
	// whose slices are carved across nodes, or fault plans that mutate
	// cross-shard state — collapse to the single-kernel path; Sharded()
	// reports the outcome.
	Shards int
}

// Cluster is a fully wired simulated deployment.
type Cluster struct {
	K   *sim.Kernel
	cfg Config

	gmap    *remoting.GMap
	mapper  *balancer.Mapper
	mapQ    *sim.Queue[mapperMsg]
	devices []*gpu.Device // indexed by GID
	traces  []*gpu.UtilTrace
	nodeDev [][]*gpu.Device // per node
	scheds  []*devsched.Scheduler
	backs   []*stringsBackend

	appSeq    int
	appTenant map[int]int64 // app id → tenant, for horizon-based accounting
	results   *RunResult

	// Shard composition (see shardenv.go). In the single-kernel path envs
	// holds one legacy environment aliasing the fields above and coord is
	// nil; in the sharded path there is one environment per node and coord
	// drives their kernels.
	envs     []*shardEnv
	coord    *shard.Coordinator
	envOfGID []int // GID → owning environment index

	// Injected fault state, indexed by GID and written only by the fault
	// injector (all zero in fault-free runs).
	gpuDown    []bool
	stallUntil []sim.Time
	degrade    []float64

	// Slice-placement ledger (see slices.go); inert unless the fleet has
	// partitionable devices and a run declares slice streams.
	sl sliceState
}

// selectResult carries a selection answer from the mapper service back to
// the waiting interposer.
type selectResult struct {
	gid balancer.GID
}

// mapperMsg is a message to the affinity-mapper service process: either a
// selection request (out/done set) or a feedback/release relay.
type mapperMsg struct {
	req  balancer.Request
	out  *selectResult
	done *sim.Event

	fb      *rpcproto.Feedback
	release bool
	relGID  balancer.GID
	relKind string

	// Failure-detector traffic.
	fail      bool
	recovered bool
	hGID      balancer.GID
	hOut      *healthResult

	// Cross-shard reply routing: when the requester lives on another shard
	// kernel, done stays nil and the verdict is fired through the shard
	// mailbox back to xsrc, paying the control-plane latency on the way.
	xsrc  int
	xdone *sim.Event
}

// healthResult carries a failure report's verdict back to the caller.
type healthResult struct {
	h balancer.Health
}

// New builds a cluster per cfg. The kernel, devices, gPool, mapper service
// and (for ModeStrings) per-GPU backends are created immediately.
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("core: no nodes configured")
	}
	if cfg.Balance == "" {
		cfg.Balance = "GRR"
	}
	if cfg.DevPolicy == "" {
		cfg.DevPolicy = "none"
	}
	if cfg.LocalLink == (rpcproto.LinkSpec{}) {
		cfg.LocalLink = rpcproto.SharedMemLink
	}
	if cfg.RemoteLink == (rpcproto.LinkSpec{}) {
		cfg.RemoteLink = rpcproto.RemoteLink
	}
	k := cfg.Kernel
	if k != nil {
		k.Reset(cfg.Seed)
	} else {
		k = sim.NewKernel(cfg.Seed)
	}
	c := &Cluster{
		K: k, cfg: cfg,
		appTenant: make(map[int]int64), results: newRunResult(),
	}
	c.buildEnvs()

	// Physical devices and the gPool. Each device lives on its node's
	// environment kernel (the one kernel in the single-kernel path).
	var infos []remoting.NodeInfo
	gid := 0
	for n, node := range cfg.Nodes {
		if len(node.Devices) == 0 {
			return nil, fmt.Errorf("core: node %d has no devices", n)
		}
		e := c.envForNode(n)
		var devs []*gpu.Device
		for _, spec := range node.Devices {
			d := gpu.NewDevice(e.k, spec, gid)
			if cfg.Trace {
				tr := &gpu.UtilTrace{}
				d.SetTracer(tr)
				c.traces = append(c.traces, tr)
			} else {
				c.traces = append(c.traces, nil)
			}
			if e.rec.Enabled() {
				// GPU-op spans: the completion callback sees the op's full
				// timing, so each op records as an already-finished span.
				g, rec := gid, e.rec
				d.SetOnComplete(func(op *gpu.Op) {
					if op.Kind == gpu.OpMarker {
						return
					}
					rec.Complete(trace.KOp, op.Kind.String(),
						op.AppID, g, op.Bytes, op.Started, op.Finished)
				})
			}
			c.devices = append(c.devices, d)
			c.envOfGID = append(c.envOfGID, e.idx)
			devs = append(devs, d)
			gid++
		}
		c.nodeDev = append(c.nodeDev, devs)
		infos = append(infos, remoting.NodeInfo{
			Node: n, Addr: fmt.Sprintf("10.1.%d.2", n), Devices: node.Devices,
		})
	}
	c.gmap = remoting.BuildGMap(infos)
	c.gpuDown = make([]bool, gid)
	c.stallUntil = make([]sim.Time, gid)
	c.degrade = make([]float64, gid)
	c.initSlices()

	if cfg.Mode == ModeCUDA {
		return c, nil
	}

	// Affinity mapper service.
	pol, err := balancer.ByName(cfg.Balance)
	if err != nil {
		return nil, err
	}
	c.mapper = balancer.NewMapper(c.gmap.DST(), pol)
	c.mapper.SetRecorder(cfg.Recorder)
	c.mapQ = sim.NewQueue[mapperMsg](c.K)
	c.K.Go("affinity-mapper", c.mapperLoop)

	// Device schedulers and, for Strings, per-GPU backend processes. Rain's
	// per-process backends can only observe attained service at request
	// boundaries, so its Request Monitor runs with coarse accounting.
	for g, d := range c.devices {
		dp, err := c.devPolicy()
		if err != nil {
			return nil, err
		}
		e := c.envs[c.envOfGID[g]]
		c.scheds = append(c.scheds, c.newSched(e, d, g, dp))
		if cfg.Mode == ModeStrings {
			c.backs = append(c.backs, newStringsBackend(c, e, g))
		}
	}
	faults.Start(c.K, cfg.Faults, c)
	return c, nil
}

// newSched builds one device scheduler with the cluster's config (Rain's
// per-process backends get the coarse accounting lag). The scheduler lives
// on the device's environment kernel.
func (c *Cluster) newSched(e *shardEnv, d *gpu.Device, gid int, dp devsched.Policy) *devsched.Scheduler {
	schedCfg := c.cfg.Sched
	if c.cfg.Mode == ModeRain && schedCfg.AccountingLag == 0 {
		schedCfg.AccountingLag = 100 * sim.Millisecond
	}
	s := devsched.New(e.k, d, gid, dp, schedCfg)
	s.SetRecorder(e.rec)
	return s
}

// devPolicy instantiates a fresh device-policy value (stateful policies
// like TFS need one instance per device).
func (c *Cluster) devPolicy() (devsched.Policy, error) {
	switch c.cfg.DevPolicy {
	case "", "none":
		return devsched.AllAwake{}, nil
	case "TFS":
		return devsched.NewTFS(), nil
	case "LAS":
		return devsched.LAS{}, nil
	case "PS":
		if c.cfg.Mode != ModeStrings {
			return nil, fmt.Errorf("core: PS is a Strings-only policy")
		}
		return devsched.PS{}, nil
	default:
		return nil, fmt.Errorf("core: unknown device policy %q", c.cfg.DevPolicy)
	}
}

// Config returns the cluster's configuration.
func (c *Cluster) Config() Config { return c.cfg }

// GMap returns the gPool's device map.
func (c *Cluster) GMap() *remoting.GMap { return c.gmap }

// Mapper returns the affinity mapper (nil in ModeCUDA).
func (c *Cluster) Mapper() *balancer.Mapper { return c.mapper }

// Devices returns the devices in GID order.
func (c *Cluster) Devices() []*gpu.Device { return c.devices }

// Scheduler returns the device scheduler for gid (nil in ModeCUDA).
func (c *Cluster) Scheduler(gid int) *devsched.Scheduler {
	if c.scheds == nil {
		return nil
	}
	return c.scheds[gid]
}

// Trace returns the utilization trace of device gid (nil unless
// Config.Trace).
func (c *Cluster) Trace(gid int) *gpu.UtilTrace { return c.traces[gid] }

// mapperLoop is the GPU Affinity Mapper service process.
func (c *Cluster) mapperLoop(p *sim.Proc) {
	const serviceTime = 3 * sim.Microsecond
	for {
		m := c.mapQ.Get(p)
		p.Sleep(serviceTime)
		switch {
		case m.fail:
			h := c.mapper.ReportFailure(m.hGID)
			if h == balancer.Dead {
				// The detector gave up on the device: take it out of the
				// gPool too, so the alive view and the DST agree.
				c.gmap.MarkDead(m.hGID)
			}
			m.hOut.h = h
			c.fireReply(m)
		case m.recovered:
			c.mapper.ReportRecovered(m.hGID)
		case m.done != nil || m.xdone != nil:
			if m.req.WantsSlice() {
				c.handleSliceSelect(p, m)
				continue
			}
			m.out.gid = c.mapper.SelectAt(p.Now(), m.req)
			c.fireReply(m)
		case m.release:
			if m.fb != nil {
				c.mapper.Feedback(m.fb)
			}
			c.mapper.Release(m.relGID, m.relKind)
			c.noteSliceRelease(p, m.relGID)
		}
	}
}

// controlLatency returns the one-way control-message latency between a node
// and the mapper (which runs on node 0).
func (c *Cluster) controlLatency(node int) sim.Time {
	if node == 0 {
		return c.cfg.LocalLink.Latency
	}
	return c.cfg.RemoteLink.Latency
}

// SelectGPU implements interpose.Fabric. Requests from tenants with a
// slice profile are enriched with the profile's demand here, so the
// interposer stays slice-agnostic.
func (c *Cluster) SelectGPU(p *sim.Proc, req balancer.Request) balancer.GID {
	req = c.sliceDemand(req)
	lat := c.controlLatency(req.Node)
	p.Sleep(lat)
	out := &selectResult{}
	done := c.K.NewEvent()
	c.mapQ.Put(mapperMsg{req: req, out: out, done: done})
	p.Wait(done)
	p.Sleep(lat)
	return out.gid
}

// ConnectBackend implements interpose.Fabric.
func (c *Cluster) ConnectBackend(p *sim.Proc, gid balancer.GID, fromNode int) rpcproto.Endpoint {
	entry, ok := c.gmap.Lookup(gid)
	link := c.cfg.LocalLink
	if ok && entry.Node != fromNode {
		link = c.cfg.RemoteLink
	}
	conn := rpcproto.NewConn(c.K, link)
	switch c.cfg.Mode {
	case ModeStrings:
		c.backs[gid].accept(conn)
	case ModeRain:
		c.serveRainConn(int(gid), conn)
	}
	return conn.A()
}

// ReportFeedback implements interpose.Fabric.
func (c *Cluster) ReportFeedback(gid balancer.GID, kind string, fb *rpcproto.Feedback) {
	c.mapQ.Put(mapperMsg{fb: fb, release: true, relGID: gid, relKind: kind})
}

// ReportFailure implements interpose.Fabric: it relays one failed call to
// the affinity mapper's failure detector and blocks for the verdict.
func (c *Cluster) ReportFailure(p *sim.Proc, gid balancer.GID) balancer.Health {
	out := &healthResult{}
	done := c.K.NewEvent()
	c.mapQ.Put(mapperMsg{fail: true, hGID: gid, hOut: out, done: done})
	p.Wait(done)
	return out.h
}

// ReportRecovered implements interpose.Fabric (fire and forget).
func (c *Cluster) ReportRecovered(gid balancer.GID) {
	c.mapQ.Put(mapperMsg{recovered: true, hGID: gid})
}

// PoolSize implements interpose.Fabric.
func (c *Cluster) PoolSize() int { return c.gmap.Len() }
