package core

import (
	"testing"

	"repro/internal/gpu"
	"repro/internal/sim"
	"repro/internal/workload"
)

// migNode is one node with two MIG-capable devices.
func migNode() []NodeConfig {
	return []NodeConfig{{Devices: []gpu.Spec{
		gpu.TeslaC2050.WithMIG(), gpu.TeslaC2050.WithMIG(),
	}}}
}

func sliceStream(tenant int64, profile string, n int) workload.StreamSpec {
	return workload.StreamSpec{
		Kind: workload.Gaussian, Count: n, Lambda: sim.Second, Node: 0,
		Tenant: tenant, Weight: 1, SliceProfile: profile,
	}
}

// TestSliceRunEndToEnd drives three tenants with distinct profiles through a
// two-device MIG fleet and checks the carve/release ledger balances.
func TestSliceRunEndToEnd(t *testing.T) {
	cfg := Config{Seed: 1, Nodes: migNode(), Mode: ModeStrings, Balance: "Frag"}
	r := mustRun(t, cfg, []workload.StreamSpec{
		sliceStream(1, "1g", 4),
		sliceStream(2, "3g", 4),
		sliceStream(3, "2g", 4),
	})
	if r.SliceCarves != 3 {
		t.Fatalf("SliceCarves = %d, want 3 (one slice per tenant)", r.SliceCarves)
	}
	if r.SliceReleases != 3 {
		t.Fatalf("SliceReleases = %d, want 3", r.SliceReleases)
	}
	if got := len(r.AdmissionWaits); got != 3 {
		t.Fatalf("len(AdmissionWaits) = %d, want 3", got)
	}
	if got := len(r.Completions[workload.Gaussian]); got != 12 {
		t.Fatalf("completions = %d, want 12", got)
	}
	if r.StrandedHorizon <= 0 {
		t.Fatal("stranded horizon not recorded")
	}
	if ratio := r.StrandedRatio(); ratio < 0 || ratio > 1 {
		t.Fatalf("StrandedRatio = %v, want within [0,1]", ratio)
	}
}

// TestSliceParkAndAdmit overcommits a single device so a tenant must park
// until an earlier tenant departs, and checks the admission wait is recorded.
func TestSliceParkAndAdmit(t *testing.T) {
	oneDev := []NodeConfig{{Devices: []gpu.Spec{gpu.TeslaC2050.WithMIG()}}}
	cfg := Config{Seed: 2, Nodes: oneDev, Mode: ModeStrings, Balance: "Frag"}
	// Two 7g tenants: only one full-device slice exists, so whichever tenant
	// arrives second parks until the first finishes all its requests.
	r := mustRun(t, cfg, []workload.StreamSpec{
		sliceStream(1, "7g", 3),
		sliceStream(2, "7g", 3),
	})
	if r.SliceCarves != 2 || r.SliceReleases != 2 {
		t.Fatalf("carves/releases = %d/%d, want 2/2", r.SliceCarves, r.SliceReleases)
	}
	if r.SliceParks == 0 {
		t.Fatal("expected at least one parked placement attempt")
	}
	var waited int
	for _, w := range r.AdmissionWaits {
		if w > 0 {
			waited++
		}
	}
	if waited != 1 {
		t.Fatalf("tenants with nonzero admission wait = %d, want exactly 1", waited)
	}
}

// TestSliceMixedWithClassic runs slice tenants next to a classic shared-device
// tenant; the classic tenant must land on whole-device rows only.
func TestSliceMixedWithClassic(t *testing.T) {
	nodes := []NodeConfig{{Devices: []gpu.Spec{
		gpu.TeslaC2050.WithMIG(), gpu.Quadro2000,
	}}}
	cfg := Config{Seed: 3, Nodes: nodes, Mode: ModeStrings, Balance: "Frag"}
	r := mustRun(t, cfg, []workload.StreamSpec{
		sliceStream(1, "3g", 3),
		{Kind: workload.Gaussian, Count: 3, Lambda: sim.Second, Node: 0, Tenant: 2, Weight: 1},
	})
	if r.SliceCarves != 1 || r.SliceReleases != 1 {
		t.Fatalf("carves/releases = %d/%d, want 1/1", r.SliceCarves, r.SliceReleases)
	}
	if got := len(r.Completions[workload.Gaussian]); got != 6 {
		t.Fatalf("completions = %d, want 6", got)
	}
}

// TestSliceRunDeterministic re-runs the same sliced config and requires
// byte-identical outcome summaries.
func TestSliceRunDeterministic(t *testing.T) {
	run := func() *RunResult {
		cfg := Config{Seed: 7, Nodes: migNode(), Mode: ModeStrings, Balance: "Frag"}
		return mustRun(t, cfg, []workload.StreamSpec{
			sliceStream(1, "2g", 5),
			sliceStream(2, "4g", 5),
			sliceStream(3, "7g", 5),
			sliceStream(4, "1g", 5),
		})
	}
	a, b := run(), run()
	if a.EndTime != b.EndTime {
		t.Fatalf("EndTime differs: %v vs %v", a.EndTime, b.EndTime)
	}
	if a.SliceCarves != b.SliceCarves || a.SliceParks != b.SliceParks {
		t.Fatalf("carves/parks differ: %d/%d vs %d/%d",
			a.SliceCarves, a.SliceParks, b.SliceCarves, b.SliceParks)
	}
	if a.StrandedIntegral != b.StrandedIntegral {
		t.Fatalf("StrandedIntegral differs: %v vs %v", a.StrandedIntegral, b.StrandedIntegral)
	}
	if len(a.AdmissionWaits) != len(b.AdmissionWaits) {
		t.Fatalf("AdmissionWaits length differs")
	}
	for i := range a.AdmissionWaits {
		if a.AdmissionWaits[i] != b.AdmissionWaits[i] {
			t.Fatalf("AdmissionWaits[%d] differs: %v vs %v", i, a.AdmissionWaits[i], b.AdmissionWaits[i])
		}
	}
}

// TestSliceNeedsStringsMode rejects slice streams outside ModeStrings.
func TestSliceNeedsStringsMode(t *testing.T) {
	c, err := New(Config{Seed: 1, Nodes: migNode(), Mode: ModeRain, Balance: "GRR"})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := c.Run([]workload.StreamSpec{sliceStream(1, "1g", 1)}); err == nil {
		t.Fatal("want error for slice stream in ModeRain")
	}
}

// TestSliceUnknownProfile rejects profile names no device offers.
func TestSliceUnknownProfile(t *testing.T) {
	c, err := New(Config{Seed: 1, Nodes: migNode(), Mode: ModeStrings, Balance: "Frag"})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := c.Run([]workload.StreamSpec{sliceStream(1, "9g", 1)}); err == nil {
		t.Fatal("want error for unknown slice profile")
	}
	cNoMIG, err := New(Config{Seed: 1, Nodes: twoGPUNode(), Mode: ModeStrings, Balance: "GMin"})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := cNoMIG.Run([]workload.StreamSpec{sliceStream(1, "1g", 1)}); err == nil {
		t.Fatal("want error when no device is partitionable")
	}
}
