package core

import (
	"fmt"

	"repro/internal/balancer"
	"repro/internal/rpcproto"
	"repro/internal/sim"
	"repro/internal/sim/shard"
	"repro/internal/trace"
)

// appIDStride spaces the per-environment application-ID ranges so IDs stay
// globally unique without cross-shard coordination: environment i hands out
// i*appIDStride+1, i*appIDStride+2, ... (the single-kernel path is the
// i == 0 range, so its IDs are unchanged).
const appIDStride = 1 << 32

// shardEnv is one shard's slice of the cluster: a kernel, the recorder and
// result sink local to it, and the app-ID/tenant bookkeeping its streams
// own. The single-kernel path uses exactly one environment whose fields
// alias the Cluster's own (sh == nil), so legacy behaviour is untouched; the
// sharded path has one environment per node and merges results after the
// run.
//
// shardEnv implements interpose.Fabric for the sharded path: control-plane
// calls that stay on the mapper's shard take the Cluster's legacy code
// paths verbatim, and calls that cross shards ride the coordinator's
// mailboxes with the control-plane latency as the (lookahead-respecting)
// delivery delay.
type shardEnv struct {
	c   *Cluster
	idx int
	k   *sim.Kernel
	sh  *shard.Shard // nil in the single-kernel path
	rec *trace.Recorder

	results   *RunResult
	appSeq    int
	appTenant map[int]int64
}

// shardEligible reports whether the per-node shard partition can express
// cfg's topology. A single node has nothing to partition; a zero remote
// latency admits no conservative lookahead; fault plans and partitionable
// (MIG) fleets mutate cross-node structure — dead devices leave the shared
// gPool, slices are carved on whatever node has room — from the mapper's
// shard, which the per-node ownership model cannot represent.
func shardEligible(cfg Config) bool {
	if len(cfg.Nodes) < 2 {
		return false
	}
	if cfg.RemoteLink.Latency < 1 {
		return false
	}
	if len(cfg.Faults.Faults) > 0 {
		return false
	}
	for _, n := range cfg.Nodes {
		for _, spec := range n.Devices {
			if spec.Partitionable() {
				return false
			}
		}
	}
	return true
}

// buildEnvs constructs the environment set: one legacy environment aliasing
// the Cluster's fields, or — when sharding is requested and the topology
// allows it — one environment per node under a conservative coordinator
// whose lookahead is the remote-link latency.
func (c *Cluster) buildEnvs() {
	cfg := c.cfg
	if cfg.Shards >= 1 && shardEligible(cfg) {
		kernels := make([]*sim.Kernel, len(cfg.Nodes))
		for n := range cfg.Nodes {
			if n == 0 {
				kernels[n] = c.K
			} else {
				// The kernel RNG is unused by the model (streams carry their
				// own seeded sources), so all shards may share the seed.
				kernels[n] = sim.NewKernel(cfg.Seed)
			}
		}
		c.coord = shard.NewCoordinator(kernels, cfg.RemoteLink.Latency, cfg.Shards)
		for n := range cfg.Nodes {
			var rec *trace.Recorder
			if n == 0 {
				rec = cfg.Recorder
			} else if cfg.Recorder.Enabled() {
				rec = trace.New()
			}
			c.envs = append(c.envs, &shardEnv{
				c: c, idx: n, k: kernels[n], sh: c.coord.Shard(n), rec: rec,
				results: newRunResult(), appTenant: make(map[int]int64),
			})
		}
		return
	}
	c.envs = []*shardEnv{{
		c: c, idx: 0, k: c.K, rec: cfg.Recorder,
		results: c.results, appTenant: c.appTenant,
	}}
}

// envForNode returns the environment owning a node's devices and streams.
func (c *Cluster) envForNode(node int) *shardEnv {
	if c.coord == nil {
		return c.envs[0]
	}
	return c.envs[node]
}

// Sharded reports whether the cluster runs the sharded composition (a
// Shards >= 1 request may still collapse to the single kernel; see
// Config.Shards).
func (c *Cluster) Sharded() bool { return c.coord != nil }

// ShardStats returns the coordinator's window-protocol counters (zero when
// not sharded).
func (c *Cluster) ShardStats() shard.Stats {
	if c.coord == nil {
		return shard.Stats{}
	}
	return c.coord.Stats()
}

// Dispatched returns the total activations dispatched across every shard
// kernel (the single kernel's count when not sharded).
func (c *Cluster) Dispatched() uint64 {
	var n uint64
	for _, e := range c.envs {
		n += e.k.Dispatched()
	}
	return n
}

// FastForwards sums the fast-forward counters across every shard kernel.
func (c *Cluster) FastForwards() (jumps uint64, skipped sim.Time) {
	for _, e := range c.envs {
		j, s := e.k.FastForwards()
		jumps += j
		skipped += s
	}
	return jumps, skipped
}

// Recorders returns every environment's recorder in shard order (a single
// element when not sharded; empty when tracing is disabled). Concatenating
// their JSONL output in this order is the sharded run's canonical trace.
func (c *Cluster) Recorders() []*trace.Recorder {
	var recs []*trace.Recorder
	for _, e := range c.envs {
		if e.rec.Enabled() {
			recs = append(recs, e.rec)
		}
	}
	return recs
}

// Close releases the shard coordinator's barrier workers. A no-op for
// single-kernel clusters; safe to call more than once.
func (c *Cluster) Close() {
	if c.coord != nil {
		c.coord.Close()
	}
}

// fireReply delivers a mapper verdict to its requester: locally for
// same-kernel requests, through the shard mailbox (paying the control-plane
// latency) for cross-shard ones.
func (c *Cluster) fireReply(m mapperMsg) {
	if m.xdone != nil {
		done := m.xdone
		c.envs[0].sh.Send(m.xsrc, c.cfg.RemoteLink.Latency, func() { done.Fire() })
		return
	}
	m.done.Fire()
}

// nextAppID allocates the next application ID from the environment's range.
func (e *shardEnv) nextAppID() int {
	if e.sh == nil {
		e.c.appSeq++
		return e.c.appSeq
	}
	e.appSeq++
	return e.idx*appIDStride + e.appSeq
}

// fabric returns the interpose.Fabric the environment's frontends talk to:
// the Cluster itself on the single-kernel path, the environment on the
// sharded one.
func (e *shardEnv) fabric() interposeFabric {
	if e.sh == nil {
		return e.c
	}
	return e
}

// interposeFabric mirrors interpose.Fabric without the import (interpose
// already imports nothing from core; the compiler checks conformance at the
// interpose.New call site).
type interposeFabric interface {
	SelectGPU(p *sim.Proc, req balancer.Request) balancer.GID
	ConnectBackend(p *sim.Proc, gid balancer.GID, fromNode int) rpcproto.Endpoint
	ReportFeedback(gid balancer.GID, kind string, fb *rpcproto.Feedback)
	ReportFailure(p *sim.Proc, gid balancer.GID) balancer.Health
	ReportRecovered(gid balancer.GID)
	PoolSize() int
}

// SelectGPU implements interpose.Fabric for the sharded path. Requests from
// the mapper's own shard take the legacy path; remote ones ride the mailbox
// there and back, reproducing the legacy remote timing (latency out,
// service, latency back).
func (e *shardEnv) SelectGPU(p *sim.Proc, req balancer.Request) balancer.GID {
	c := e.c
	if e.idx == 0 {
		return c.SelectGPU(p, req)
	}
	req = c.sliceDemand(req)
	lat := c.cfg.RemoteLink.Latency
	out := &selectResult{}
	done := e.k.NewEvent()
	src := e.idx
	e.sh.Send(0, lat, func() {
		c.mapQ.Put(mapperMsg{req: req, out: out, xsrc: src, xdone: done})
	})
	p.Wait(done)
	return out.gid
}

// ConnectBackend implements interpose.Fabric for the sharded path. A
// same-shard connection is the legacy local conn on this environment's
// kernel. A cross-shard one is a cross-kernel conn whose two inbox queues
// live on their readers' kernels and whose deliveries ride the mailboxes;
// the accept is sent ahead on the same mailbox, so it is injected before
// (or at the same instant as, but ordered before) the handshake call.
func (e *shardEnv) ConnectBackend(p *sim.Proc, gid balancer.GID, fromNode int) rpcproto.Endpoint {
	c := e.c
	owner := c.envOfGID[gid]
	if owner == e.idx {
		entry, ok := c.gmap.Lookup(gid)
		link := c.cfg.LocalLink
		if ok && entry.Node != fromNode {
			link = c.cfg.RemoteLink
		}
		conn := rpcproto.NewConn(e.k, link)
		switch c.cfg.Mode {
		case ModeStrings:
			c.backs[gid].accept(conn)
		case ModeRain:
			e.serveRainConn(int(gid), conn)
		}
		return conn.A()
	}
	oe := c.envs[owner]
	link := c.cfg.RemoteLink
	src, dst := e.idx, owner
	conn := rpcproto.NewCrossConn(e.k, oe.k, link,
		func(lat sim.Time, fn func()) { e.sh.Send(dst, lat, fn) },
		func(lat sim.Time, fn func()) { oe.sh.Send(src, lat, fn) })
	g := gid
	e.sh.Send(dst, link.Latency, func() {
		switch c.cfg.Mode {
		case ModeStrings:
			c.backs[g].accept(conn)
		case ModeRain:
			oe.serveRainConn(int(g), conn)
		}
	})
	return conn.A()
}

// ReportFeedback implements interpose.Fabric for the sharded path. The
// single kernel delivers feedback to the mapper instantly; a cross-shard
// report pays the control-plane latency (the more physical model — this is
// one of the sharded composition's documented divergences).
func (e *shardEnv) ReportFeedback(gid balancer.GID, kind string, fb *rpcproto.Feedback) {
	c := e.c
	if e.idx == 0 {
		c.ReportFeedback(gid, kind, fb)
		return
	}
	m := mapperMsg{fb: fb, release: true, relGID: gid, relKind: kind}
	e.sh.Send(0, c.cfg.RemoteLink.Latency, func() { c.mapQ.Put(m) })
}

// ReportFailure implements interpose.Fabric for the sharded path (reachable
// only with recovery armed; fault plans collapse sharding, so in practice
// this handles spurious timeouts, not injected faults).
func (e *shardEnv) ReportFailure(p *sim.Proc, gid balancer.GID) balancer.Health {
	c := e.c
	if e.idx == 0 {
		return c.ReportFailure(p, gid)
	}
	out := &healthResult{}
	done := e.k.NewEvent()
	src := e.idx
	e.sh.Send(0, c.cfg.RemoteLink.Latency, func() {
		c.mapQ.Put(mapperMsg{fail: true, hGID: gid, hOut: out, xsrc: src, xdone: done})
	})
	p.Wait(done)
	return out.h
}

// ReportRecovered implements interpose.Fabric for the sharded path.
func (e *shardEnv) ReportRecovered(gid balancer.GID) {
	c := e.c
	if e.idx == 0 {
		c.ReportRecovered(gid)
		return
	}
	e.sh.Send(0, c.cfg.RemoteLink.Latency, func() {
		c.mapQ.Put(mapperMsg{recovered: true, hGID: gid})
	})
}

// PoolSize implements interpose.Fabric (the gPool map is immutable during
// fault-free runs, which is the only kind the sharded path admits).
func (e *shardEnv) PoolSize() int { return e.c.gmap.Len() }

// serveRainConn spawns the per-application Rain backend on this
// environment's kernel (the legacy path when not sharded — the shared
// Cluster counter keeps the legacy app-ID sequence byte-identical).
func (e *shardEnv) serveRainConn(gid int, conn *rpcproto.Conn) {
	if e.sh == nil {
		e.c.serveRainConn(gid, conn)
		return
	}
	e.appSeq++
	seq := e.appSeq
	ep := conn.B()
	e.k.GoNamed(func() string { return fmt.Sprintf("rain-%d-%d", gid, seq) },
		func(p *sim.Proc) { e.c.rainServe(p, gid, ep) })
}

// collectSharded merges the per-environment results into the cluster result
// in shard order and stamps the global end time (the latest shard clock).
func (c *Cluster) collectSharded() {
	var end sim.Time
	for _, e := range c.envs {
		if t := e.k.Now(); t > end {
			end = t
		}
	}
	for _, e := range c.envs {
		c.results.Merge(e.results)
	}
	c.results.EndTime = end
}

// tenantsByApp returns the app → tenant map covering every environment.
func (c *Cluster) tenantsByApp() map[int]int64 {
	if c.coord == nil {
		return c.appTenant
	}
	all := make(map[int]int64)
	for _, e := range c.envs {
		for id, t := range e.appTenant {
			all[id] = t
		}
	}
	return all
}

// Interface conformance is otherwise only checked at interpose.New call
// sites that pass a *shardEnv.
var (
	_ interposeFabric = (*shardEnv)(nil)
	_ interposeFabric = (*Cluster)(nil)
)
