package core

import (
	"fmt"

	"repro/internal/cuda"
	"repro/internal/devsched"
	"repro/internal/gpu"
	"repro/internal/packer"
	"repro/internal/rpcproto"
	"repro/internal/sim"
)

// stringsBackend is the Design III backend: one process per GPU, hosting a
// backend thread per connected application. All threads share the process's
// CUDA runtime (hence a single GPU context) through the Context Packer, and
// every thread is gated by the device scheduler's Dispatcher.
type stringsBackend struct {
	c     *Cluster
	gid   int
	rt    *cuda.Runtime
	pk    *packer.Packer
	sched *devsched.Scheduler
	conns *sim.Queue[*rpcproto.Conn]
	nexts int
}

// newStringsBackend spawns the backend daemon for the device with the given
// GID, on the device's environment kernel.
func newStringsBackend(c *Cluster, e *shardEnv, gid int) *stringsBackend {
	cudaCfg := c.cfg.CUDA
	if c.cfg.MemoryGuard {
		cudaCfg.BlockOnOOM = true
	}
	rt := cuda.NewRuntime(e.k, []*gpu.Device{c.devices[gid]}, cudaCfg)
	b := &stringsBackend{
		c:     c,
		gid:   gid,
		rt:    rt,
		pk:    packer.New(rt, c.cfg.Packer),
		sched: c.scheds[gid],
		conns: sim.NewQueue[*rpcproto.Conn](e.k),
	}
	b.pk.SetRecorder(e.rec, gid)
	e.k.Go(fmt.Sprintf("backend-%d", gid), b.acceptLoop)
	return b
}

// accept hands a new frontend connection to the daemon.
func (b *stringsBackend) accept(conn *rpcproto.Conn) { b.conns.Put(conn) }

// acceptLoop spawns one backend thread per accepted connection.
func (b *stringsBackend) acceptLoop(p *sim.Proc) {
	for {
		conn := b.conns.Get(p)
		b.nexts++
		gid, n := b.gid, b.nexts
		ep := conn.B()
		p.Kernel().GoNamed(func() string { return fmt.Sprintf("bt-%d-%d", gid, n) },
			func(tp *sim.Proc) { b.serve(tp, ep) })
	}
}

// serve is one backend thread: it performs the registration handshake with
// the Request Manager, then executes the application's marshalled calls
// through the Context Packer under the Dispatcher's wake/sleep gating.
func (b *stringsBackend) serve(p *sim.Proc, ep rpcproto.Endpoint) {
	first, ok := ep.Recv(p).(*rpcproto.Call)
	if !ok || first.ID != cuda.CallSetDevice {
		reply := &rpcproto.Reply{}
		reply.SetError(cuda.ErrInvalidValue)
		ep.Send(p, reply, 0)
		return
	}
	if b.c.faultGate(p, b.gid) {
		// The backend died before (or while) the registration was served:
		// the daemon is gone, so the handshake reply never leaves the node.
		return
	}
	appID := int(first.AppID)
	pool := ep.Pool()
	held := 0
	entry := b.sched.Register(appID, first.TenantID, int(first.Weight),
		first.KernelName, func() int { return held + ep.InboxLen() })
	port, err := b.pk.Open(p, appID, first.TenantID)
	reply := pool.GetReply()
	reply.Seq = first.Seq
	reply.SetError(err)
	ep.Send(p, reply, 0)
	if err != nil {
		b.sched.Unregister(appID)
		return
	}
	port.SetPool(pool)
	for {
		call, ok := ep.Recv(p).(*rpcproto.Call)
		if !ok {
			continue
		}
		if b.c.faultGate(p, b.gid) {
			// Killed: swallow the call and keep draining the inbox so
			// retransmissions die here instead of backing up the queue.
			continue
		}
		held = 1
		b.sched.SetPhaseEntry(entry, devsched.CallPhase(call))
		if devsched.GatesOnDispatch(call.ID) {
			b.sched.WaitTurn(p, entry)
		}
		t0 := p.Now()
		reply := port.Execute(call)
		b.c.degradePenalty(p, b.gid, p.Now()-t0)
		held = 0
		b.sched.SetPhaseEntry(entry, devsched.PhaseDFL)
		if b.c.gpuDown[b.gid] {
			// The kill landed while the call executed: the reply is lost
			// with the daemon.
			if call.ID == cuda.CallThreadExit {
				b.sched.Unregister(appID)
				return
			}
			pool.FreeReply(reply)
			continue
		}
		if call.ID == cuda.CallThreadExit {
			reply.Feedback = b.sched.Unregister(appID)
			ep.Send(p, reply, 0)
			return
		}
		if !call.NonBlocking {
			// Blocking round trip: the frontend owns both frames now and
			// recycles them when it issues its next call.
			ep.Send(p, reply, call.ReplyPayloadBytes())
			continue
		}
		// Non-blocking: the frontend forgot the call at issue and the reply
		// is suppressed, so this side recycles both.
		pool.FreeReply(reply)
		pool.FreeCall(call)
	}
}

// serveRainConn spawns a Rain (Design I) backend process for one
// application: a private CUDA runtime — and therefore a private GPU context
// — executing the application's calls verbatim: synchronous memcpys stay
// synchronous, device synchronizes stay device-wide, everything runs on the
// context's default stream. The per-device scheduler still gates
// submission, which is how TFS-Rain and LAS-Rain are realized.
func (c *Cluster) serveRainConn(gid int, conn *rpcproto.Conn) {
	c.appSeq++
	seq := c.appSeq
	ep := conn.B()
	c.K.GoNamed(func() string { return fmt.Sprintf("rain-%d-%d", gid, seq) },
		func(p *sim.Proc) { c.rainServe(p, gid, ep) })
}

func (c *Cluster) rainServe(p *sim.Proc, gid int, ep rpcproto.Endpoint) {
	first, ok := ep.Recv(p).(*rpcproto.Call)
	if !ok || first.ID != cuda.CallSetDevice {
		reply := &rpcproto.Reply{}
		reply.SetError(cuda.ErrInvalidValue)
		ep.Send(p, reply, 0)
		return
	}
	if c.faultGate(p, gid) {
		return
	}
	appID := int(first.AppID)
	pool := ep.Pool()
	sched := c.scheds[gid]
	held := 0
	entry := sched.Register(appID, first.TenantID, int(first.Weight),
		first.KernelName, func() int { return held + ep.InboxLen() })

	// A fresh runtime per application: Rain's per-app backend process (on
	// whichever shard kernel this backend proc runs on).
	rt := cuda.NewRuntime(p.Kernel(), []*gpu.Device{c.devices[gid]}, c.cfg.CUDA)
	rt.SetOwner(appID)
	t := rt.NewThread(p, appID)
	reply := pool.GetReply()
	reply.Seq = first.Seq
	reply.SetError(t.SetDevice(0))
	ep.Send(p, reply, 0)

	for {
		call, ok := ep.Recv(p).(*rpcproto.Call)
		if !ok {
			continue
		}
		if c.faultGate(p, gid) {
			continue
		}
		held = 1
		sched.SetPhaseEntry(entry, devsched.CallPhase(call))
		if devsched.GatesOnDispatch(call.ID) {
			sched.WaitTurn(p, entry)
		}
		t0 := p.Now()
		reply := c.rainExecute(t, call, pool)
		c.degradePenalty(p, gid, p.Now()-t0)
		held = 0
		sched.SetPhaseEntry(entry, devsched.PhaseDFL)
		if c.gpuDown[gid] {
			if call.ID == cuda.CallThreadExit {
				sched.Unregister(appID)
				return
			}
			pool.FreeReply(reply)
			continue
		}
		if call.ID == cuda.CallThreadExit {
			reply.Feedback = sched.Unregister(appID)
			ep.Send(p, reply, 0)
			return
		}
		if !call.NonBlocking {
			ep.Send(p, reply, call.ReplyPayloadBytes())
			continue
		}
		// Non-blocking round trips are recycled on this side (see serve).
		pool.FreeReply(reply)
		pool.FreeCall(call)
	}
}

// rainExecute runs one call directly against the per-app runtime — no
// stream translation, no sync conversion, no pinned staging.
func (c *Cluster) rainExecute(t *cuda.Thread, call *rpcproto.Call, pool *rpcproto.Pool) *rpcproto.Reply {
	reply := pool.GetReply()
	reply.Seq = call.Seq
	ptr := cuda.Ptr{Dev: int(call.PtrDev), ID: call.PtrID, Size: call.PtrSize}
	switch call.ID {
	case cuda.CallDeviceCount:
		reply.Count = int32(t.DeviceCount())
	case cuda.CallMalloc:
		p, err := t.Malloc(call.Bytes)
		if err != nil {
			reply.SetError(err)
			break
		}
		reply.PtrID, reply.PtrSize, reply.PtrDev = p.ID, p.Size, int32(p.Dev)
	case cuda.CallFree:
		reply.SetError(t.Free(ptr))
	case cuda.CallMemcpy:
		reply.SetError(t.Memcpy(call.Dir, ptr, call.Bytes))
	case cuda.CallMemcpyAsync:
		reply.SetError(t.MemcpyAsync(call.Dir, ptr, call.Bytes, cuda.StreamID(call.Stream)))
	case cuda.CallLaunch:
		reply.SetError(t.Launch(cuda.Kernel{
			Name:       call.KernelName,
			Compute:    call.Compute,
			MemTraffic: call.MemTraffic,
			Occupancy:  call.Occupancy,
		}, cuda.StreamID(call.Stream)))
	case cuda.CallStreamCreate:
		s, err := t.StreamCreate()
		if err != nil {
			reply.SetError(err)
			break
		}
		reply.Stream = int32(s)
	case cuda.CallStreamSync:
		reply.SetError(t.StreamSynchronize(cuda.StreamID(call.Stream)))
	case cuda.CallStreamDestroy:
		reply.SetError(t.StreamDestroy(cuda.StreamID(call.Stream)))
	case cuda.CallEventCreate:
		e, err := t.EventCreate()
		if err != nil {
			reply.SetError(err)
			break
		}
		reply.Event = int32(e)
	case cuda.CallEventRecord:
		reply.SetError(t.EventRecord(cuda.EventID(call.Event), cuda.StreamID(call.Stream)))
	case cuda.CallEventSync:
		reply.SetError(t.EventSynchronize(cuda.EventID(call.Event)))
	case cuda.CallEventElapsed:
		d, err := t.EventElapsed(cuda.EventID(call.Event), cuda.EventID(call.Event2))
		if err != nil {
			reply.SetError(err)
			break
		}
		reply.Elapsed = int64(d)
	case cuda.CallEventDestroy:
		reply.SetError(t.EventDestroy(cuda.EventID(call.Event)))
	case cuda.CallDeviceSync:
		reply.SetError(t.DeviceSynchronize())
	case cuda.CallThreadExit:
		reply.SetError(t.ThreadExit())
	default:
		reply.SetError(cuda.ErrNotImplemented)
	}
	return reply
}
