package core

import (
	"errors"
	"fmt"
	"math/rand"
	"slices"
	"sort"

	"repro/internal/cuda"
	"repro/internal/interpose"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// RunResult aggregates one experiment run.
type RunResult struct {
	// Completions holds arrival-to-completion latencies per application
	// class.
	Completions map[workload.Kind][]sim.Time

	// TenantService is the total attained GPU service per tenant (the
	// fairness experiments' allocation measure).
	TenantService map[int64]sim.Time

	// TenantWeight records each tenant's configured weight.
	TenantWeight map[int64]int

	// Errors collects application failures (should stay empty).
	Errors []string

	// EndTime is the virtual time at which the last event completed.
	EndTime sim.Time

	// Requests is the per-request event log (completion order; use
	// SortedRequests for submission order).
	Requests []RequestEvent

	Launched int
	Finished int

	// Lost counts applications terminated by cuda.ErrBackendLost: their
	// backend died mid-flight and the pending work was not provably safe
	// to replay. Lost requests are reported separately from Errors —
	// losing work to an injected fault is an outcome, not a bug.
	Lost int

	// Recovered counts applications that completed despite being touched
	// by a backend failure (a call timeout or a failover to another GPU).
	Recovered int

	// Slice-placement outcomes (all zero unless the run used slice
	// streams; see internal/core/slices.go).
	SliceCarves   int // slices carved over the run
	SliceReleases int // slices destroyed when their tenant departed
	SliceParks    int // placement attempts that had to park for capacity

	// AdmissionWaits is the per-tenant wait from the tenant's first
	// placement attempt to its slice being carved (zero when it was placed
	// immediately) — the admission component of the tenants' SLO.
	AdmissionWaits []sim.Time

	// StrandedIntegral/StrandedHorizon hold the time-weighted integral of
	// the fleet's stranded-capacity fraction and the virtual time it was
	// integrated over; StrandedRatio() is their quotient.
	StrandedIntegral float64
	StrandedHorizon  sim.Time
}

// StrandedRatio returns the time-averaged stranded-capacity fraction of the
// partitionable fleet: free capacity weighted by the share of slice
// profiles it cannot serve (see balancer.FragScore), averaged over devices
// and virtual time. Zero for fleets without partitionable devices.
func (r *RunResult) StrandedRatio() float64 {
	if r.StrandedHorizon <= 0 {
		return 0
	}
	return r.StrandedIntegral / float64(r.StrandedHorizon)
}

// AvgAdmissionWait returns the mean slice-admission wait (0 with no slices).
func (r *RunResult) AvgAdmissionWait() sim.Time {
	if len(r.AdmissionWaits) == 0 {
		return 0
	}
	var sum int64
	for _, w := range r.AdmissionWaits {
		sum += int64(w)
	}
	return sim.Time(sum / int64(len(r.AdmissionWaits)))
}

func newRunResult() *RunResult {
	return &RunResult{
		Completions:   make(map[workload.Kind][]sim.Time),
		TenantService: make(map[int64]sim.Time),
		TenantWeight:  make(map[int64]int),
	}
}

// NewRunResultForPooling returns an empty result suitable for merging
// replicated runs into.
func NewRunResultForPooling() *RunResult { return newRunResult() }

// Merge pools another run's results into r: completions and request logs
// append, per-tenant services and counters sum, the horizon takes the
// maximum. Pooled averages and ratios then weight every request equally
// across replications.
func (r *RunResult) Merge(o *RunResult) {
	for k, ts := range o.Completions {
		r.Completions[k] = append(r.Completions[k], ts...)
	}
	for id, svc := range o.TenantService {
		r.TenantService[id] += svc
	}
	for id, w := range o.TenantWeight {
		r.TenantWeight[id] = w
	}
	r.Errors = append(r.Errors, o.Errors...)
	r.Requests = append(r.Requests, o.Requests...)
	r.Launched += o.Launched
	r.Finished += o.Finished
	r.Lost += o.Lost
	r.Recovered += o.Recovered
	r.SliceCarves += o.SliceCarves
	r.SliceReleases += o.SliceReleases
	r.SliceParks += o.SliceParks
	r.AdmissionWaits = append(r.AdmissionWaits, o.AdmissionWaits...)
	r.StrandedIntegral += o.StrandedIntegral
	r.StrandedHorizon += o.StrandedHorizon
	if o.EndTime > r.EndTime {
		r.EndTime = o.EndTime
	}
}

// AvgCompletion returns the mean completion latency for a class (0 if the
// class never completed).
func (r *RunResult) AvgCompletion(k workload.Kind) sim.Time {
	ts := r.Completions[k]
	if len(ts) == 0 {
		return 0
	}
	var sum int64
	for _, t := range ts {
		sum += int64(t)
	}
	return sim.Time(sum / int64(len(ts)))
}

// PercentileCompletion returns the p-quantile (0..1) of a class's
// completion latencies.
func (r *RunResult) PercentileCompletion(k workload.Kind, p float64) sim.Time {
	ts := r.Completions[k]
	if len(ts) == 0 {
		return 0
	}
	xs := make([]float64, len(ts))
	for i, t := range ts {
		xs[i] = float64(t)
	}
	return sim.Time(metrics.Percentile(xs, p))
}

// Kinds returns the classes with completions, in Kind order.
func (r *RunResult) Kinds() []workload.Kind {
	ks := make([]workload.Kind, 0, len(r.Completions))
	for k := range r.Completions {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

// FairnessAllocations returns the per-tenant weighted allocations
// x_i = service_i / weight_i, ordered by tenant id — the inputs to Jain's
// index.
func (r *RunResult) FairnessAllocations() []float64 {
	ids := make([]int64, 0, len(r.TenantService))
	for id := range r.TenantService {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	xs := make([]float64, 0, len(ids))
	for _, id := range ids {
		w := r.TenantWeight[id]
		if w <= 0 {
			w = 1
		}
		xs = append(xs, float64(r.TenantService[id])/float64(w))
	}
	return xs
}

// Run launches the request streams and drives the simulation to completion,
// returning the aggregated results.
func (c *Cluster) Run(streams []workload.StreamSpec) (*RunResult, error) {
	if err := c.prepareSlices(streams); err != nil {
		return nil, err
	}
	for si, s := range streams {
		if s.Node < 0 || s.Node >= len(c.nodeDev) {
			return nil, fmt.Errorf("core: stream %d arrives at unknown node %d", si, s.Node)
		}
		c.launchStream(si, s)
	}
	if c.coord != nil {
		c.coord.Run()
		c.collectSharded()
	} else {
		c.K.Run()
		c.results.EndTime = c.K.Now()
	}
	c.closeStranded(c.results.EndTime)
	return c.results, nil
}

// RunUntil drives the simulation to the given virtual horizon and measures
// per-tenant *delivered* GPU service over that contention window directly
// from the devices (excluding any context-switch overhead the driver
// charged). This is the fairness experiments' measurement: streams are
// sized to keep every tenant backlogged through the horizon, and the Jain
// index is computed over service rates while tenants actually compete.
func (c *Cluster) RunUntil(streams []workload.StreamSpec, horizon sim.Time) (*RunResult, error) {
	if err := c.prepareSlices(streams); err != nil {
		return nil, err
	}
	for si, s := range streams {
		if s.Node < 0 || s.Node >= len(c.nodeDev) {
			return nil, fmt.Errorf("core: stream %d arrives at unknown node %d", si, s.Node)
		}
		c.launchStream(si, s)
	}
	if c.coord != nil {
		c.coord.RunUntil(horizon)
		c.collectSharded()
	} else {
		c.K.RunUntil(horizon)
		c.results.EndTime = c.K.Now()
	}
	c.closeStranded(c.results.EndTime)
	// Replace the completion-derived tenant accounting with the devices'
	// view at the horizon.
	tenants := c.tenantsByApp()
	c.results.TenantService = make(map[int64]sim.Time)
	appIDs := make([]int, 0, len(tenants))
	for appID := range tenants {
		appIDs = append(appIDs, appID)
	}
	slices.Sort(appIDs)
	for _, appID := range appIDs {
		var svc sim.Time
		for _, d := range c.devices {
			// Delivered service only: the driver's context-switch charge
			// is excluded here (it contaminates the per-process-context
			// schedulers' *own* accounting — and hence their decisions —
			// but the experiment measures what applications actually
			// received).
			svc += d.AppService(appID)
		}
		c.results.TenantService[tenants[appID]] += svc
	}
	return c.results, nil
}

// launchStream spawns the per-stream arrival process on the environment
// owning the stream's arrival node.
func (c *Cluster) launchStream(si int, s workload.StreamSpec) {
	var arrivals []sim.Time
	if c.cfg.Traces != nil {
		// Shared immutable trace; the book derives it with the same seed
		// formula, so the two paths are bit-identical.
		arrivals = c.cfg.Traces.Arrivals(c.cfg.Seed, si, s)
	} else {
		rng := rand.New(rand.NewSource(workload.StreamSeed(c.cfg.Seed, si)))
		arrivals = s.Arrivals(rng)
	}
	prof := workload.ProfileFor(s.Kind)
	e := c.envForNode(s.Node)
	e.k.Go(fmt.Sprintf("stream-%d-%s", si, s.Kind), func(p *sim.Proc) {
		for i, at := range arrivals {
			if at > p.Now() {
				p.Sleep(at - p.Now())
			}
			app := &workload.App{
				Profile: prof,
				Style:   s.Style,
				ID:      e.nextAppID(),
				Tenant:  s.Tenant,
				Weight:  s.Weight,
				// The application's programmed (static) device choice —
				// the one the CUDA-runtime baseline honours and Strings
				// overrides.
				PreferredDev: 0,
			}
			e.results.Launched++
			e.results.TenantWeight[s.Tenant] = s.Weight
			e.appTenant[app.ID] = s.Tenant
			name := fmt.Sprintf("app-%s-%d.%d", s.Kind, si, i)
			e.k.Go(name, func(ap *sim.Proc) { e.runApp(ap, app, s) })
		}
	})
}

// runApp executes one application request end to end and records its
// outcome against the owning environment's recorder and result sink.
func (e *shardEnv) runApp(p *sim.Proc, app *workload.App, s workload.StreamSpec) {
	c := e.c
	app.Submitted = p.Now()
	reqSpan := e.rec.Begin(trace.KRequest, 0, p.Now(),
		s.Kind.String(), app.ID, -1, s.Tenant)
	var client cuda.Client
	var ipose *interpose.Interposer
	var factory func(*sim.Proc) cuda.Client
	switch c.cfg.Mode {
	case ModeCUDA:
		// A private process on the bare runtime, seeing only its node's
		// devices.
		rt := cuda.NewRuntime(e.k, c.nodeDev[s.Node], c.cfg.CUDA)
		rt.SetOwner(app.ID)
		client = rt.NewThread(p, app.ID)
		factory = func(tp *sim.Proc) cuda.Client { return rt.NewThread(tp, app.ID) }
	default:
		ipose = interpose.New(e.fabric(), p, app.ID, s.Tenant, s.Weight,
			s.Kind.String(), s.Node, c.cfg.Mode == ModeStrings)
		ipose.SetRecovery(c.cfg.Recovery)
		ipose.SetTrace(e.rec, reqSpan)
		client = ipose
		sess := interpose.NewMTSession(e.k, ipose)
		factory = sess.Thread
	}
	var err error
	if app.Style == workload.StyleMultiThread {
		err = app.RunThreaded(p, factory, 2)
	} else {
		err = app.Run(client)
	}
	gid := -1
	if ipose != nil {
		gid = int(ipose.GID())
	} else if devs := c.nodeDev[s.Node]; len(devs) > 0 {
		gid = devs[app.PreferredDev%len(devs)].ID()
	}
	e.rec.SetGID(reqSpan, gid)
	e.rec.End(reqSpan, p.Now())
	if err != nil {
		if errors.Is(err, cuda.ErrBackendLost) {
			e.results.Lost++
		} else {
			e.results.Errors = append(e.results.Errors, err.Error())
		}
		e.recordRequest(app, s, gid, err.Error())
		return
	}
	e.results.Finished++
	if ipose != nil && ipose.Disrupted() {
		e.results.Recovered++
	}
	e.results.Completions[s.Kind] = append(e.results.Completions[s.Kind], app.CompletionTime())
	e.recordRequest(app, s, gid, "")

	// Tenant GPU service for fairness accounting.
	var gputime sim.Time
	if ipose != nil {
		if fb := ipose.LastFeedback; fb != nil {
			gputime = fb.GPUTime
		}
	} else {
		for _, d := range c.nodeDev[s.Node] {
			gputime += d.AppService(app.ID)
		}
	}
	e.results.TenantService[s.Tenant] += gputime
}
