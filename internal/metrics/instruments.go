package metrics

import (
	"math/bits"
	"sort"
)

// Counter is a monotonically increasing count of discrete occurrences.
// Instruments are written by one simulation run at a time (the kernel is
// single-threaded), so no synchronization is needed.
type Counter struct {
	name string
	n    int64
}

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds d (negative deltas are ignored: counters are monotonic).
func (c *Counter) Add(d int64) {
	if d > 0 {
		c.n += d
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n }

// Reset returns the counter to zero (instrument reuse across runs).
func (c *Counter) Reset() { c.n = 0 }

// histBuckets is the number of power-of-two histogram buckets. Bucket i
// holds observations v with 2^(i-1) <= v < 2^i (bucket 0 holds v <= 0 and
// v == 1 lands in bucket 1); the last bucket is a catch-all.
const histBuckets = 40

// Histogram aggregates a distribution of non-negative int64 observations
// (virtual-time durations in microseconds, queue depths, byte counts) into
// power-of-two buckets.
type Histogram struct {
	name    string
	buckets [histBuckets]int64
	count   int64
	sum     int64
	max     int64
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string { return h.name }

// Observe folds one observation into the histogram. Negative values clamp
// to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	b := bits.Len64(uint64(v))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.buckets[b]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Reset discards all observations (instrument reuse across runs).
func (h *Histogram) Reset() {
	h.buckets = [histBuckets]int64{}
	h.count, h.sum, h.max = 0, 0, 0
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the total of all observations.
func (h *Histogram) Sum() int64 { return h.sum }

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() int64 { return h.max }

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns an upper bound on the p-quantile (0..1): the upper edge
// of the first bucket whose cumulative count reaches p·count. The bound is
// within 2x of the true quantile by construction of the bucket widths.
func (h *Histogram) Quantile(p float64) int64 {
	if h.count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := int64(p*float64(h.count) + 0.5)
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, n := range h.buckets {
		cum += n
		if cum >= target {
			if i == 0 {
				return 0
			}
			edge := int64(1) << uint(i)
			if edge > h.max || edge < 0 {
				return h.max
			}
			return edge - 1
		}
	}
	return h.max
}

// Registry is a named collection of instruments. Lookups create on first
// use; rendering is sorted by name so output is deterministic regardless of
// registration order.
type Registry struct {
	counters map[string]*Counter
	hists    map[string]*Histogram
}

// NewRegistry returns an empty instrument registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name}
	r.counters[name] = c
	return c
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := &Histogram{name: name}
	r.hists[name] = h
	return h
}

// Table renders every instrument as one single-value series: counters under
// their registered name, histograms expanded into .count/.sum/.mean/.p50/
// .p99/.max series. Series are sorted by name.
func (r *Registry) Table(title string) *Table {
	t := &Table{Title: title, Labels: []string{"value"}}
	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t.Add(name, []float64{float64(r.counters[name].n)})
	}
	hnames := make([]string, 0, len(r.hists))
	for name := range r.hists {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		h := r.hists[name]
		t.Add(name+".count", []float64{float64(h.count)})
		t.Add(name+".sum", []float64{float64(h.sum)})
		t.Add(name+".mean", []float64{h.Mean()})
		t.Add(name+".p50", []float64{float64(h.Quantile(0.5))})
		t.Add(name+".p99", []float64{float64(h.Quantile(0.99))})
		t.Add(name+".max", []float64{float64(h.max)})
	}
	return t
}
