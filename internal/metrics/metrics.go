// Package metrics implements the paper's evaluation metrics: weighted
// speedup (Snavely & Tullsen) for system throughput and Jain's fairness
// index for per-tenant fairness, plus small statistics helpers used by the
// experiment harnesses.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/sim"
)

// WeightedSpeedup implements the paper's equation (2):
//
//	WS = (1/n) Σ_i T_alone(i) / T_shared(i)
//
// where T_alone is the application's completion time when it owns the
// resource and T_shared its completion time under the evaluated scheduler.
// Pairs with nonpositive shared time are skipped.
func WeightedSpeedup(alone, shared []sim.Time) float64 {
	if len(alone) != len(shared) || len(alone) == 0 {
		return 0
	}
	var sum float64
	n := 0
	for i := range alone {
		if shared[i] <= 0 {
			continue
		}
		sum += float64(alone[i]) / float64(shared[i])
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// JainFairness implements the paper's equation (3):
//
//	F = (Σ x_i)² / (n · Σ x_i²)
//
// over per-application normalized allocations x_i. It is 1 when all x_i are
// equal and 1/n when one application receives everything.
func JainFairness(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var sum, sq float64
	for _, v := range x {
		sum += v
		sq += v * v
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(x)) * sq)
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// MeanTime returns the mean of a slice of times.
func MeanTime(ts []sim.Time) sim.Time {
	if len(ts) == 0 {
		return 0
	}
	var s int64
	for _, t := range ts {
		s += int64(t)
	}
	return sim.Time(s / int64(len(ts)))
}

// GeoMean returns the geometric mean of positive xs, skipping nonpositive
// entries.
func GeoMean(xs []float64) float64 {
	var s float64
	n := 0
	for _, v := range xs {
		if v > 0 {
			s += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(s / float64(n))
}

// Percentile returns the p-quantile (0..1) of xs using nearest-rank on a
// sorted copy.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 1 {
		return s[len(s)-1]
	}
	idx := int(math.Ceil(p*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	return s[idx]
}

// Series is one named sequence of per-label values — a bar group in one of
// the paper's figures.
type Series struct {
	Name   string
	Values []float64
}

// Table is a labeled collection of series: the printable form of a figure.
type Table struct {
	Title  string
	Labels []string
	Series []Series
}

// Add appends a series; the value count must match the label count (a
// short or long series would silently render misaligned cells, so the
// mismatch is a programming error and panics).
func (t *Table) Add(name string, values []float64) {
	if len(values) != len(t.Labels) {
		panic(fmt.Sprintf("metrics: series %q has %d values for %d labels in table %q",
			name, len(values), len(t.Labels), t.Title))
	}
	t.Series = append(t.Series, Series{Name: name, Values: values})
}

// Merge appends o's series to t. It is the conflict-checked merge path for
// ordered collectors pooling per-cell tables: the label tuples must match
// exactly and a series name already present in t is an error, never a
// silent overwrite or a silent duplicate (Add would happily append a second
// series under the same name, and Row would then only ever find the first).
func (t *Table) Merge(o *Table) error {
	if o == nil {
		return nil
	}
	if len(o.Labels) != len(t.Labels) {
		return fmt.Errorf("metrics: merging table %q into %q: %d labels vs %d",
			o.Title, t.Title, len(o.Labels), len(t.Labels))
	}
	for i := range t.Labels {
		if t.Labels[i] != o.Labels[i] {
			return fmt.Errorf("metrics: merging table %q into %q: label %d is %q vs %q",
				o.Title, t.Title, i, o.Labels[i], t.Labels[i])
		}
	}
	// Validate everything before appending anything: a failed merge must
	// leave t untouched (the collector reports the error and the partial
	// table would otherwise leak into output).
	for i, s := range o.Series {
		if len(s.Values) != len(t.Labels) {
			return fmt.Errorf("metrics: merging series %q into %q: %d values for %d labels",
				s.Name, t.Title, len(s.Values), len(t.Labels))
		}
		if t.Row(s.Name) != nil {
			return fmt.Errorf("metrics: merge conflict: series %q already present in table %q",
				s.Name, t.Title)
		}
		for _, prev := range o.Series[:i] {
			if prev.Name == s.Name {
				return fmt.Errorf("metrics: merge conflict: series %q duplicated within table %q",
					s.Name, o.Title)
			}
		}
	}
	for _, s := range o.Series {
		t.Series = append(t.Series, Series{Name: s.Name, Values: s.Values})
	}
	return nil
}

// Row returns the values of series name, or nil.
func (t *Table) Row(name string) []float64 {
	for _, s := range t.Series {
		if s.Name == name {
			return s.Values
		}
	}
	return nil
}

// WithAverage returns a copy of the table with an "AVG" label appended and
// each series extended by its mean — the paper's figures all carry an AVG
// group.
func (t *Table) WithAverage() *Table {
	out := &Table{Title: t.Title, Labels: append(append([]string(nil), t.Labels...), "AVG")}
	for _, s := range t.Series {
		out.Add(s.Name, append(append([]float64(nil), s.Values...), Mean(s.Values)))
	}
	return out
}

// CSV renders the table as comma-separated values with a header row; label
// and series names containing commas or quotes are quoted.
func (t *Table) CSV() string {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	out := esc("label")
	for _, s := range t.Series {
		out += "," + esc(s.Name)
	}
	out += "\n"
	for i, lab := range t.Labels {
		out += esc(lab)
		for _, s := range t.Series {
			if i < len(s.Values) {
				out += fmt.Sprintf(",%.6g", s.Values[i])
			} else {
				out += ","
			}
		}
		out += "\n"
	}
	return out
}

// Format renders the table as aligned text columns.
func (t *Table) Format() string {
	out := t.Title + "\n"
	out += fmt.Sprintf("%-12s", "")
	for _, s := range t.Series {
		out += fmt.Sprintf("%14s", s.Name)
	}
	out += "\n"
	for i, lab := range t.Labels {
		out += fmt.Sprintf("%-12s", lab)
		for _, s := range t.Series {
			if i < len(s.Values) {
				out += fmt.Sprintf("%14.3f", s.Values[i])
			} else {
				out += fmt.Sprintf("%14s", "-")
			}
		}
		out += "\n"
	}
	return out
}
