package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestWeightedSpeedupIdentity(t *testing.T) {
	a := []sim.Time{10, 20, 30}
	if ws := WeightedSpeedup(a, a); !almost(ws, 1) {
		t.Fatalf("WS(x,x) = %v, want 1", ws)
	}
}

func TestWeightedSpeedupTwoX(t *testing.T) {
	alone := []sim.Time{100, 100}
	shared := []sim.Time{50, 50}
	if ws := WeightedSpeedup(alone, shared); !almost(ws, 2) {
		t.Fatalf("WS = %v, want 2", ws)
	}
}

func TestWeightedSpeedupSkipsZeroShared(t *testing.T) {
	alone := []sim.Time{100, 100}
	shared := []sim.Time{50, 0}
	if ws := WeightedSpeedup(alone, shared); !almost(ws, 2) {
		t.Fatalf("WS = %v, want 2 (zero entry skipped)", ws)
	}
}

func TestWeightedSpeedupDegenerate(t *testing.T) {
	if WeightedSpeedup(nil, nil) != 0 {
		t.Fatal("empty input should be 0")
	}
	if WeightedSpeedup([]sim.Time{1}, []sim.Time{1, 2}) != 0 {
		t.Fatal("mismatched lengths should be 0")
	}
	if WeightedSpeedup([]sim.Time{1}, []sim.Time{0}) != 0 {
		t.Fatal("all-zero shared should be 0")
	}
}

func TestJainFairnessEqualAllocations(t *testing.T) {
	if f := JainFairness([]float64{5, 5, 5, 5}); !almost(f, 1) {
		t.Fatalf("Jain(equal) = %v, want 1", f)
	}
}

func TestJainFairnessOneHog(t *testing.T) {
	if f := JainFairness([]float64{1, 0, 0, 0}); !almost(f, 0.25) {
		t.Fatalf("Jain(hog,n=4) = %v, want 0.25", f)
	}
}

func TestJainFairnessKnownValue(t *testing.T) {
	// (1+2+3)²/(3·(1+4+9)) = 36/42.
	if f := JainFairness([]float64{1, 2, 3}); !almost(f, 36.0/42.0) {
		t.Fatalf("Jain = %v, want %v", f, 36.0/42.0)
	}
}

func TestJainFairnessDegenerate(t *testing.T) {
	if JainFairness(nil) != 0 {
		t.Fatal("empty should be 0")
	}
	if JainFairness([]float64{0, 0}) != 0 {
		t.Fatal("all-zero should be 0")
	}
}

// Property: Jain's index always lies in [1/n, 1] for non-negative inputs
// with at least one positive entry.
func TestQuickJainBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		pos := false
		for i, r := range raw {
			xs[i] = float64(r)
			if r > 0 {
				pos = true
			}
		}
		if !pos {
			return true
		}
		j := JainFairness(xs)
		n := float64(len(xs))
		return j >= 1/n-1e-9 && j <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: weighted speedup is positive and scales linearly when shared
// times halve.
func TestQuickWeightedSpeedupScaling(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		alone := make([]sim.Time, len(raw))
		shared := make([]sim.Time, len(raw))
		for i, r := range raw {
			alone[i] = sim.Time(r) + 1
			shared[i] = (sim.Time(r) + 2) * 2
		}
		ws := WeightedSpeedup(alone, shared)
		half := make([]sim.Time, len(shared))
		for i := range shared {
			half[i] = shared[i] / 2
		}
		ws2 := WeightedSpeedup(alone, half)
		return ws > 0 && math.Abs(ws2-2*ws) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanAndMeanTime(t *testing.T) {
	if !almost(Mean([]float64{1, 2, 3}), 2) {
		t.Fatal("Mean wrong")
	}
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if MeanTime([]sim.Time{10, 20}) != 15 {
		t.Fatal("MeanTime wrong")
	}
	if MeanTime(nil) != 0 {
		t.Fatal("MeanTime(nil) != 0")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); !almost(g, 2) {
		t.Fatalf("GeoMean = %v", g)
	}
	if GeoMean([]float64{-1, 0}) != 0 {
		t.Fatal("GeoMean of nonpositives should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if p := Percentile(xs, 0.5); p != 3 {
		t.Fatalf("p50 = %v", p)
	}
	if p := Percentile(xs, 0); p != 1 {
		t.Fatalf("p0 = %v", p)
	}
	if p := Percentile(xs, 1); p != 5 {
		t.Fatalf("p100 = %v", p)
	}
	if Percentile(nil, 0.5) != 0 {
		t.Fatal("empty percentile")
	}
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{Title: "Fig X", Labels: []string{"DC", "SC"}}
	tab.Add("GRR", []float64{1.5, 2.5})
	tab.Add("GMin", []float64{2.0, 3.0})
	avg := tab.WithAverage()
	if len(avg.Labels) != 3 || avg.Labels[2] != "AVG" {
		t.Fatalf("labels = %v", avg.Labels)
	}
	if v := avg.Row("GRR")[2]; !almost(v, 2.0) {
		t.Fatalf("AVG of GRR = %v", v)
	}
	if avg.Row("nope") != nil {
		t.Fatal("Row of missing series should be nil")
	}
	s := avg.Format()
	if !strings.Contains(s, "Fig X") || !strings.Contains(s, "GMin") || !strings.Contains(s, "AVG") {
		t.Fatalf("Format output missing pieces:\n%s", s)
	}
}

func TestTableFormatShortSeries(t *testing.T) {
	// The renderer itself stays defensive about short series (they can
	// only arise from hand-built Series values now that Add enforces the
	// label count).
	tab := &Table{Title: "t", Labels: []string{"a", "b"},
		Series: []Series{{Name: "s", Values: []float64{1}}}}
	if s := tab.Format(); !strings.Contains(s, "-") {
		t.Fatal("missing value placeholder absent")
	}
}

func TestTableAddLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with a short series should panic")
		}
	}()
	tab := &Table{Title: "t", Labels: []string{"a", "b"}}
	tab.Add("s", []float64{1})
}

func TestTableMerge(t *testing.T) {
	dst := &Table{Title: "dst", Labels: []string{"a", "b"}}
	dst.Add("base", []float64{1, 2})

	src := &Table{Title: "src", Labels: []string{"a", "b"}}
	src.Add("s1", []float64{3, 4})
	src.Add("s2", []float64{5, 6})
	if err := dst.Merge(src); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if got := dst.Row("s2"); got == nil || got[1] != 6 {
		t.Fatalf("merged series missing: %v", got)
	}
	if len(dst.Series) != 3 {
		t.Fatalf("series count = %d, want 3", len(dst.Series))
	}
	if err := dst.Merge(nil); err != nil {
		t.Fatalf("Merge(nil): %v", err)
	}
}

func TestTableMergeConflicts(t *testing.T) {
	mk := func(labels []string, name string, vals []float64) *Table {
		return &Table{Labels: labels, Series: []Series{{Name: name, Values: vals}}}
	}
	dst := &Table{Title: "dst", Labels: []string{"a", "b"}}
	dst.Add("s", []float64{1, 2})

	// Duplicate row key.
	if err := dst.Merge(mk([]string{"a", "b"}, "s", []float64{9, 9})); err == nil {
		t.Error("duplicate series merged silently")
	}
	// Label count mismatch.
	if err := dst.Merge(mk([]string{"a"}, "t", []float64{9})); err == nil {
		t.Error("label-count mismatch merged silently")
	}
	// Label tuple mismatch.
	if err := dst.Merge(mk([]string{"a", "c"}, "t", []float64{9, 9})); err == nil {
		t.Error("label-tuple mismatch merged silently")
	}
	// Malformed source series (hand-built, bypassing Add).
	if err := dst.Merge(mk([]string{"a", "b"}, "t", []float64{9})); err == nil {
		t.Error("short source series merged silently")
	}
	// A failed merge must not have partially applied.
	if len(dst.Series) != 1 {
		t.Fatalf("failed merges mutated the table: %d series", len(dst.Series))
	}
}
