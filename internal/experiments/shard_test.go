package experiments

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// TestFig10ShardInvariance runs a supernode figure — the topology that
// genuinely shards — at shard worker counts 1/2/4/8 and demands deeply equal
// tables: the conservative window protocol must make the barrier worker
// count invisible to every simulated number.
func TestFig10ShardInvariance(t *testing.T) {
	fig10 := func(shards int) string {
		s := NewSuite(Options{Seed: 3, Requests: 4,
			Pairs: workload.Pairs()[:3], Shards: shards})
		return s.Fig10().Format()
	}
	ref := fig10(1)
	for _, n := range []int{2, 4, 8} {
		if got := fig10(n); got != ref {
			t.Errorf("Fig10 diverged at Shards=%d:\nshards=1:\n%s\nshards=%d:\n%s",
				n, ref, n, got)
		}
	}
}

// TestShardRequestLogInvariance DeepEquals the full request log of a
// supernode scenario across shard counts — stronger than table equality:
// every request's placement and latency breakdown must match event for
// event.
func TestShardRequestLogInvariance(t *testing.T) {
	logs := func(shards int) []core.RequestEvent {
		s := NewSuite(Options{Seed: 5, Requests: 5, Shards: shards})
		r := s.run(scenario{
			key:     "shard-invariance-log",
			cfg:     core.Config{Nodes: supernode(), Mode: core.ModeStrings, Balance: "GMin"},
			streams: s.pairStreams(workload.Pairs()[0], true),
		})
		return r.SortedRequests()
	}
	ref := logs(1)
	if len(ref) == 0 {
		t.Fatal("reference run produced an empty request log")
	}
	for _, n := range []int{2, 4, 8} {
		if got := logs(n); !reflect.DeepEqual(got, ref) {
			t.Errorf("request log diverged at Shards=%d", n)
		}
	}
}

// TestFragGridShardInvariance runs the -exp frag grid at shard counts
// 1/2/4/8. MIG-partitionable fleets collapse to the classic single kernel by
// design (slice carving rewires devices mid-run), so invariance here is
// trivial — and this test pins that the collapse actually happens instead of
// a sharded run silently diverging.
func TestFragGridShardInvariance(t *testing.T) {
	frag := func(shards int) string {
		return NewSuite(Options{Seed: 1, Requests: 3, Shards: shards}).FragPacking().Format()
	}
	ref := frag(1)
	for _, n := range []int{2, 4, 8} {
		if got := frag(n); got != ref {
			t.Errorf("FragPacking diverged at Shards=%d", n)
		}
	}
}
