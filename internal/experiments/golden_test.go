package experiments

import (
	"math"
	"testing"

	"repro/internal/workload"
)

// TestFig9Golden pins one full Figure 9 run to the exact values produced by
// the original container/heap kernel and allocating codec. The fast-path
// kernel (split heap/now-queue, baton-chain handoff) and the zero-copy wire
// path must be bit-for-bit deterministic drop-ins: any drift in these
// numbers means the (time, sequence) dispatch order changed.
func TestFig9Golden(t *testing.T) {
	if testing.Short() {
		t.Skip("full Fig 9 run")
	}
	s := NewSuite(Options{
		Seed:     1,
		Requests: 8,
		Apps: []workload.Kind{
			workload.DXTC, workload.Scan,
			workload.MonteCarlo, workload.BlackScholes,
		},
	})
	tab := s.Fig9()

	// Columns: DC, SC, MC, BS, AVG. Captured at commit time with the seed
	// kernel and reproduced unchanged by the rewrite.
	golden := map[string][]float64{
		"GRR-Rain":       {3.40688816322, 1.07066901396, 2.78011414529, 2.1429761231, 2.35016186139},
		"GMin-Rain":      {3.41951239164, 1.07066901396, 2.78011414529, 2.1429761231, 2.35331791849},
		"GWtMin-Rain":    {4.1171094691, 1.09240530087, 2.84555966996, 2.31877604943, 2.59346262234},
		"GRR-Strings":    {3.56703409811, 1.07052167916, 4.23448885591, 1.99645074833, 2.71712384538},
		"GMin-Strings":   {3.58208588014, 1.07052167916, 4.36463701068, 1.99645074833, 2.75342382958},
		"GWtMin-Strings": {4.27048423888, 1.0950806931, 4.71467875446, 2.17746970273, 3.06442834729},
	}
	const tol = 1e-9 // golden values carry 12 significant digits
	for series, want := range golden {
		row := tab.Row(series)
		if row == nil {
			t.Errorf("series %q missing from Fig 9", series)
			continue
		}
		if len(row) != len(want) {
			t.Errorf("series %q has %d columns, want %d", series, len(row), len(want))
			continue
		}
		for i, w := range want {
			if math.Abs(row[i]-w) > tol*math.Abs(w) {
				t.Errorf("%s[%s] = %.12g, want %.12g (dispatch order drifted)",
					series, tab.Labels[i], row[i], w)
			}
		}
	}
}
