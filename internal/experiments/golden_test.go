package experiments

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/metrics"
	"repro/internal/workload"
)

// fig9GoldenOpts is the fixed scenario every Fig 9 golden variant runs.
func fig9GoldenOpts() Options {
	return Options{
		Seed:     1,
		Requests: 8,
		Apps: []workload.Kind{
			workload.DXTC, workload.Scan,
			workload.MonteCarlo, workload.BlackScholes,
		},
	}
}

// fig9Golden pins one full Figure 9 run to the exact values produced by the
// original container/heap kernel and allocating codec. Columns: DC, SC, MC,
// BS, AVG. Captured at commit time with the seed kernel and reproduced
// unchanged by every rewrite since.
var fig9Golden = map[string][]float64{
	"GRR-Rain":       {3.40688816322, 1.07066901396, 2.78011414529, 2.1429761231, 2.35016186139},
	"GMin-Rain":      {3.41951239164, 1.07066901396, 2.78011414529, 2.1429761231, 2.35331791849},
	"GWtMin-Rain":    {4.1171094691, 1.09240530087, 2.84555966996, 2.31877604943, 2.59346262234},
	"GRR-Strings":    {3.56703409811, 1.07052167916, 4.23448885591, 1.99645074833, 2.71712384538},
	"GMin-Strings":   {3.58208588014, 1.07052167916, 4.36463701068, 1.99645074833, 2.75342382958},
	"GWtMin-Strings": {4.27048423888, 1.0950806931, 4.71467875446, 2.17746970273, 3.06442834729},
}

// checkFig9Golden compares one Fig 9 table against the pinned values.
func checkFig9Golden(t *testing.T, variant string, tab *metrics.Table) {
	t.Helper()
	const tol = 1e-9 // golden values carry 12 significant digits
	for series, want := range fig9Golden {
		row := tab.Row(series)
		if row == nil {
			t.Errorf("%s: series %q missing from Fig 9", variant, series)
			continue
		}
		if len(row) != len(want) {
			t.Errorf("%s: series %q has %d columns, want %d", variant, series, len(row), len(want))
			continue
		}
		for i, w := range want {
			if math.Abs(row[i]-w) > tol*math.Abs(w) {
				t.Errorf("%s: %s[%s] = %.12g, want %.12g (dispatch order drifted)",
					variant, series, tab.Labels[i], row[i], w)
			}
		}
	}
}

// TestFig9Golden runs the pinned Figure 9 scenario through every execution
// path the sweep engine adds and demands bit-identical results from all of
// them: the fast-path kernel, the zero-copy wire path, recycled kernels
// (the arena Reset path), shared arrival traces, and the parallel worker
// pool must each be drop-ins — any drift in these numbers means the
// (time, sequence) dispatch order changed.
func TestFig9Golden(t *testing.T) {
	if testing.Short() {
		t.Skip("full Fig 9 run")
	}
	variants := []struct {
		name   string
		mutate func(*Options)
	}{
		// The default path: kernels recycled through the suite's arena,
		// traces shared, workers at GOMAXPROCS.
		{"reused-kernels", func(*Options) {}},
		// Every scenario on a fresh kernel — the pre-reuse reference.
		{"fresh-kernels", func(o *Options) { o.FreshKernels = true }},
		// Sequential reference execution.
		{"sequential", func(o *Options) { o.Workers = 1 }},
		// Oversubscribed pool (more workers than cores) to vary completion
		// interleaving.
		{"parallel-8", func(o *Options) { o.Workers = 8 }},
		// Sharded-kernel opt-in: Fig 9's single-node scenarios collapse to
		// the classic kernel, so the golden values must hold unchanged.
		{"sharded-4", func(o *Options) { o.Shards = 4 }},
	}
	tables := make([]*metrics.Table, len(variants))
	for i, v := range variants {
		opt := fig9GoldenOpts()
		v.mutate(&opt)
		tables[i] = NewSuite(opt).Fig9()
		checkFig9Golden(t, v.name, tables[i])
	}
	for i := 1; i < len(variants); i++ {
		if !reflect.DeepEqual(tables[i], tables[0]) {
			t.Errorf("variant %s produced a table not deeply equal to %s",
				variants[i].name, variants[0].name)
		}
	}
}
