// Package experiments reproduces the paper's evaluation: one runner per
// table and figure (Table I, Figures 1, 2 and 9–15), plus the ablations
// motivated by the design discussion. Each runner assembles the scenario's
// cluster topology, request streams and policy matrix, runs the simulation,
// and reports the same rows/series the paper plots.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// Options scales the experiments. The zero value selects paper-like
// defaults; tests and benchmarks shrink Requests to bound runtime.
type Options struct {
	Seed int64

	// Requests is the number of requests per short-job (Group B) stream;
	// long-job (Group A) streams receive two-thirds of it (the paper's
	// "many short running rather than a few long running" mix).
	Requests int

	// LambdaFactor scales each stream's mean inter-arrival time relative
	// to its application's solo runtime (paper: λ proportional to runtime).
	LambdaFactor float64

	// FairHorizon is the contention window of the fairness experiments.
	FairHorizon sim.Time

	// Pairs restricts the 24-pair experiments (nil = all).
	Pairs []workload.Pair

	// Apps restricts the per-application experiments (nil = all ten).
	Apps []workload.Kind

	// Seeds replicates every scenario across this many consecutive seeds
	// and pools the results (completions appended, services summed), so
	// figure values average over arrival randomness. 0 or 1 runs a single
	// replication.
	Seeds int

	// Workers bounds how many independent simulations run concurrently
	// (each scenario owns its own virtual clock, so scenarios parallelize
	// perfectly). 0 selects GOMAXPROCS; 1 forces sequential execution.
	// Results are identical at any worker count.
	Workers int

	// Shards, when >= 1, opts every scenario into the time-partitioned
	// parallel kernel (core.Config.Shards): eligible multi-node clusters
	// split into one shard kernel per node advancing concurrently under the
	// conservative window protocol, with Shards barrier workers. Results
	// are bit-identical for any Shards >= 1; single-node and MIG scenarios
	// collapse to the classic single kernel. 0 keeps the legacy path
	// (goldens are pinned against it).
	Shards int

	// FreshKernels disables kernel recycling: every scenario builds its
	// kernel from scratch instead of resetting one borrowed from the
	// suite's arena. Results are identical either way (TestFig9Golden pins
	// both paths); the flag exists to compare them.
	FreshKernels bool
}

func (o Options) withDefaults() Options {
	if o.Requests <= 0 {
		o.Requests = 10
	}
	if o.LambdaFactor <= 0 {
		o.LambdaFactor = 0.6
	}
	if o.FairHorizon <= 0 {
		o.FairHorizon = 40 * sim.Second
	}
	if o.Pairs == nil {
		o.Pairs = workload.Pairs()
	}
	if o.Apps == nil {
		o.Apps = workload.AllKinds
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Seeds <= 0 {
		o.Seeds = 1
	}
	return o
}

// longRequests returns the Group A stream length.
func (o Options) longRequests() int {
	n := o.Requests * 2 / 3
	if n < 2 {
		n = 2
	}
	return n
}

// The paper's testbed nodes.
func nodeA() core.NodeConfig {
	return core.NodeConfig{Devices: []gpu.Spec{gpu.Quadro2000, gpu.TeslaC2050}}
}
func nodeB() core.NodeConfig {
	return core.NodeConfig{Devices: []gpu.Spec{gpu.Quadro4000, gpu.TeslaC2070}}
}

// singleNode is the small-scale two-GPU server.
func singleNode() []core.NodeConfig { return []core.NodeConfig{nodeA()} }

// supernode is the emulated four-GPU server.
func supernode() []core.NodeConfig { return []core.NodeConfig{nodeA(), nodeB()} }

// oneGPU is the fairness experiments' single shared device.
func oneGPU() []core.NodeConfig {
	return []core.NodeConfig{{Devices: []gpu.Spec{gpu.TeslaC2050}}}
}

// Suite memoizes scenario results so figures sharing baselines (e.g. the
// single-node GRR-Rain run) pay for them once. A suite is safe for
// concurrent use: scenarios deduplicate through a singleflight cache and
// run on independent virtual clocks.
type Suite struct {
	opt   Options
	mu    sync.Mutex
	cache map[string]*cacheEntry

	// arena recycles kernels across scenarios so back-to-back runs on one
	// worker reuse the event heap and ring backing arrays.
	arena parallel.KernelArena

	// traces shares materialized arrival traces across scenarios — every
	// policy of a figure replays the identical workload, so the streams
	// are derived once and aliased read-only everywhere.
	traces *workload.TraceBook

	// Runs counts distinct simulations executed (cache misses).
	Runs int
}

// cacheEntry is a singleflight slot: the first caller executes the
// scenario, every other caller waits on the Once.
type cacheEntry struct {
	once sync.Once
	res  *core.RunResult
}

// NewSuite creates a suite with the given options.
func NewSuite(opt Options) *Suite {
	return &Suite{
		opt:    opt.withDefaults(),
		cache:  make(map[string]*cacheEntry),
		traces: workload.NewTraceBook(),
	}
}

// Options returns the resolved options.
func (s *Suite) Options() Options { return s.opt }

// scenario identifies a memoizable run.
type scenario struct {
	key     string
	cfg     core.Config
	streams []workload.StreamSpec
	horizon sim.Time // 0 = run to completion
}

// run executes (or recalls) a scenario.
func (s *Suite) run(sc scenario) *core.RunResult {
	s.mu.Lock()
	e, ok := s.cache[sc.key]
	if !ok {
		e = &cacheEntry{}
		s.cache[sc.key] = e
	}
	s.mu.Unlock()
	e.once.Do(func() {
		pooled := core.NewRunResultForPooling()
		if !s.opt.FreshKernels {
			k := s.arena.Get()
			defer s.arena.Put(k)
			sc.cfg.Kernel = k
		}
		sc.cfg.Traces = s.traces
		sc.cfg.Shards = s.opt.Shards
		for rep := 0; rep < s.opt.Seeds; rep++ {
			sc.cfg.Seed = s.repSeed(rep)
			c, err := core.New(sc.cfg)
			if err != nil {
				panic(fmt.Sprintf("experiments: %v", err))
			}
			// Sharded clusters own a barrier worker pool; legacy ones no-op.
			defer c.Close()
			var r *core.RunResult
			if sc.horizon > 0 {
				r, err = c.RunUntil(sc.streams, sc.horizon)
			} else {
				r, err = c.Run(sc.streams)
			}
			if err != nil {
				panic(fmt.Sprintf("experiments: %v", err))
			}
			if len(r.Errors) > 0 {
				panic(fmt.Sprintf("experiments: scenario %s: app errors: %v", sc.key, r.Errors[0]))
			}
			pooled.Merge(r)
			s.mu.Lock()
			s.Runs++
			s.mu.Unlock()
		}
		e.res = pooled
	})
	if e.res == nil {
		panic(fmt.Sprintf("experiments: scenario %s failed in another goroutine", sc.key))
	}
	return e.res
}

// repSeed derives replication rep's run seed. Replication 0 runs the base
// seed itself (the golden figures pin exactly that), later replications
// fold the replication index through sweep.FoldSeed so replication streams
// are decorrelated and order-independent.
func (s *Suite) repSeed(rep int) int64 {
	if rep == 0 {
		return s.opt.Seed
	}
	return sweep.FoldSeed(s.opt.Seed, uint64(rep))
}

// engine returns the sweep engine configured with the suite's worker bound.
func (s *Suite) engine() sweep.Engine {
	return sweep.Engine{Parallel: s.opt.Workers}
}

// forEach runs fn(i) for every index over the blessed worker pool
// (internal/parallel). Panics in workers propagate to the caller. Output
// written by index keeps results deterministic regardless of scheduling.
func (s *Suite) forEach(n int, fn func(i int)) {
	parallel.Do(n, s.opt.Workers, fn)
}

// grid flattens a rows×cols experiment matrix (policy × pair, system × app)
// into one sweep cell grid and runs it on the suite's engine, so the whole
// figure parallelizes across both axes instead of fanning out one policy
// row at a time. fn must be independent per cell (memoized scenario runs
// are fine: the singleflight cache dedupes shared baselines); results come
// back grouped by row, each row in column order.
func (s *Suite) grid(rows, cols int, key func(r, c int) string, fn func(r, c int) float64) [][]float64 {
	g := sweep.NewGrid(rows, cols)
	cells := make([]sweep.Cell[float64], g.Size())
	for i := range cells {
		r, c := g.Coord(i, 0), g.Coord(i, 1)
		cells[i] = sweep.Cell[float64]{
			Key: key(r, c),
			Run: func() float64 { return fn(r, c) },
		}
	}
	flat := sweep.Run(s.engine(), cells)
	out := make([][]float64, rows)
	for r := range out {
		out[r] = flat[r*cols : (r+1)*cols : (r+1)*cols]
	}
	return out
}

// stream builds one request stream.
func (s *Suite) stream(kind workload.Kind, count, node int, tenant int64) workload.StreamSpec {
	return workload.StreamSpec{
		Kind: kind, Count: count, LambdaFactor: s.opt.LambdaFactor,
		Node: node, Tenant: tenant, Weight: 1,
	}
}

// pairStreams builds the Group A/Group B streams of a pair. Under the
// supernode the long stream arrives at node 0 and the short one at node 1;
// collapsed to one node both arrive at node 0.
func (s *Suite) pairStreams(p workload.Pair, twoNodes bool) []workload.StreamSpec {
	nodeOfB := 0
	if twoNodes {
		nodeOfB = 1
	}
	return []workload.StreamSpec{
		s.stream(p.Long, s.opt.longRequests(), 0, 1),
		s.stream(p.Short, s.opt.Requests, nodeOfB, 2),
	}
}

// pairBaseline1N is the common baseline of Figures 10, 12, 14 and 15: the
// pair served by single-node GRR (Rain's remoting generation, as the
// cross-figure arithmetic of the paper implies).
func (s *Suite) pairBaseline1N(p workload.Pair) *core.RunResult {
	return s.run(scenario{
		key:     "base1N/" + p.Label,
		cfg:     core.Config{Nodes: singleNode(), Mode: core.ModeRain, Balance: "GRR"},
		streams: s.pairStreams(p, false),
	})
}

// pairBaseline4G is Figure 13's baseline: the supernode shared under GRR
// (Rain).
func (s *Suite) pairBaseline4G(p workload.Pair) *core.RunResult {
	return s.run(scenario{
		key:     "base4G/" + p.Label,
		cfg:     core.Config{Nodes: supernode(), Mode: core.ModeRain, Balance: "GRR"},
		streams: s.pairStreams(p, true),
	})
}

// weightedSpeedup computes the pair's weighted speedup of run over base:
// the mean over the two applications of base's average completion over
// run's (paper eq. 2 with T_alone taken from the baseline scheduler).
func weightedSpeedup(p workload.Pair, base, run *core.RunResult) float64 {
	alone := []sim.Time{base.AvgCompletion(p.Long), base.AvgCompletion(p.Short)}
	shared := []sim.Time{run.AvgCompletion(p.Long), run.AvgCompletion(p.Short)}
	return metrics.WeightedSpeedup(alone, shared)
}

// pairLabels lists the configured pairs' labels.
func (s *Suite) pairLabels() []string {
	out := make([]string, len(s.opt.Pairs))
	for i, p := range s.opt.Pairs {
		out[i] = p.Label
	}
	return out
}
