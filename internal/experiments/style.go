package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// AblationAppStyle contrasts hand-optimized applications (explicit streams,
// double-buffered asynchronous copies) with naive synchronous ones, under
// the bare runtime and under Strings. The paper's interposer asynchrony
// (§III.B.2) shows up clearly: an unmodified synchronous application under
// Strings finishes far ahead of even the hand-pipelined application on the
// bare runtime, because Strings combines the recovered asynchrony with
// balancing and context packing.
func (s *Suite) AblationAppStyle() *metrics.Table {
	kinds := []workload.Kind{workload.MonteCarlo, workload.BinomialOptions}
	labels := make([]string, len(kinds))
	rows := map[string][]float64{}
	series := []struct {
		name  string
		mode  core.Mode
		style workload.Style
	}{
		{"CUDA/sync", core.ModeCUDA, workload.StyleSync},
		{"CUDA/pipelined", core.ModeCUDA, workload.StylePipelined},
		{"Strings/sync", core.ModeStrings, workload.StyleSync},
		{"Strings/pipelined", core.ModeStrings, workload.StylePipelined},
	}
	for i, k := range kinds {
		labels[i] = k.String()
		for _, sr := range series {
			r := s.run(scenario{
				key: fmt.Sprintf("abl-style/%s/%s", sr.name, k),
				cfg: core.Config{Nodes: singleNode(), Mode: sr.mode, Balance: "GMin"},
				streams: []workload.StreamSpec{{
					Kind: k, Count: s.opt.Requests, LambdaFactor: s.opt.LambdaFactor,
					Node: 0, Tenant: 1, Weight: 1, Style: sr.style,
				}},
			})
			rows[sr.name] = append(rows[sr.name], float64(r.AvgCompletion(k))/1e6)
		}
	}
	tab := &metrics.Table{
		Title:  "Ablation: application style vs mean completion (s) — interposer asynchrony recovers the hand-tuned pipeline",
		Labels: labels,
	}
	for _, sr := range series {
		tab.Add(sr.name, rows[sr.name])
	}
	return tab
}
