package experiments

import (
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The fragmentation study: a mixed fleet of MIG-capable devices serves
// tenants that each demand a dedicated slice (1g..7g). Placement quality now
// has a second axis the paper's whole-device policies never faced — a device
// with free capacity can still be useless to a big profile if earlier slices
// were scattered. The Frag policy descends the fleet's fragmentation
// gradient (place where the stranded-capacity measure grows least); this
// experiment compares it against GMin and GRR on packing efficiency and on
// the tenants' latency SLOs.

// fragPolicies are the placement policies under comparison.
var fragPolicies = []string{"Frag", "GMin", "GRR"}

// migFleet is the study's fleet: two nodes of two MIG-capable devices each —
// 28 compute sevenths total.
func migFleet() []core.NodeConfig {
	dev := gpu.TeslaC2050.WithMIG()
	return []core.NodeConfig{
		{Devices: []gpu.Spec{dev, dev}},
		{Devices: []gpu.Spec{dev, dev}},
	}
}

// fragStreams builds the study's tenant population: a steady trickle of
// small-slice tenants (a new 1g/2g/3g tenant every 2 s, holding its slice
// for roughly 15 s) loading about half the fleet, with whole-device (7g)
// and half-device (4g) tenants landing periodically on top. Whether those
// big tenants find contiguous capacity — or park while plenty of scattered
// capacity sits stranded — is decided purely by where the small slices
// went, which is the effect under measurement. Starts are staggered
// deterministically; only the per-stream arrival jitter is random.
func (s *Suite) fragStreams() []workload.StreamSpec {
	var streams []workload.StreamSpec
	tenant := int64(1)
	add := func(profile string, kind workload.Kind, count int, lambda, start sim.Time, node int) {
		streams = append(streams, workload.StreamSpec{
			Kind: kind, Count: count, Lambda: lambda, Node: node,
			Tenant: tenant, Weight: 1, SliceProfile: profile, Start: start,
		})
		tenant++
	}

	// Small tenants: 8 per unit of Options.Requests, profiles cycling
	// 1g,2g,1g,2g,3g (mean 1.8 sevenths). Gaussian is CPU-dominated, so its
	// service time barely stretches on a small slice and tenant lifetime
	// stays near Count·λ.
	smalls := 8 * s.opt.Requests
	profiles := []string{"1g", "2g", "1g", "2g", "3g"}
	for i := 0; i < smalls; i++ {
		add(profiles[i%len(profiles)], workload.Gaussian, s.opt.Requests,
			2*sim.Second, sim.Time(i)*2*sim.Second, i%2)
	}
	window := sim.Time(smalls) * 2 * sim.Second

	// Big tenants: BlackScholes on 7g (full-rate slice, ~6 s service) and
	// MonteCarlo on 4g, landing at fixed fractions of the small-tenant
	// window so each arrives into a partially loaded fleet.
	for i, at := range []float64{0.2, 0.5, 0.8} {
		add("7g", workload.BlackScholes, s.opt.longRequests(),
			6*sim.Second, sim.Time(at*float64(window)), i%2)
	}
	for i, at := range []float64{0.35, 0.65} {
		add("4g", workload.MonteCarlo, s.opt.longRequests(),
			8*sim.Second, sim.Time(at*float64(window)), i%2)
	}
	return streams
}

// fragTenants is the population size (every tenant eventually admits).
func (s *Suite) fragTenants() int { return 8*s.opt.Requests + 5 }

// fragRun executes the sliced-fleet scenario under one placement policy.
func (s *Suite) fragRun(policy string) *core.RunResult {
	return s.run(scenario{
		key:     "frag/" + policy,
		cfg:     core.Config{Nodes: migFleet(), Mode: core.ModeStrings, Balance: policy},
		streams: s.fragStreams(),
	})
}

// fragP99 is the p99 arrival-to-completion latency (seconds) across every
// request of the run; admission waits are inside it, so loose packing
// surfaces directly as tail latency.
func fragP99(r *core.RunResult) float64 {
	var all []float64
	for _, k := range workload.AllKinds {
		for _, t := range r.Completions[k] {
			all = append(all, float64(t))
		}
	}
	return metrics.Percentile(all, 0.99) / 1e6
}

// FragPacking compares slice-placement policies on the mixed-profile roster:
// stranded-capacity ratio (time-averaged fraction of free capacity unusable
// by the profile table), slices carved, placement attempts parked, mean
// admission wait and p99 request latency.
func (s *Suite) FragPacking() *metrics.Table {
	rows := [][]float64{
		make([]float64, len(fragPolicies)), // stranded ratio
		make([]float64, len(fragPolicies)), // slices carved
		make([]float64, len(fragPolicies)), // parked attempts
		make([]float64, len(fragPolicies)), // mean admission wait (s)
		make([]float64, len(fragPolicies)), // p99 latency (s)
	}
	s.forEach(len(fragPolicies), func(i int) {
		r := s.fragRun(fragPolicies[i])
		rows[0][i] = r.StrandedRatio()
		rows[1][i] = float64(r.SliceCarves)
		rows[2][i] = float64(r.SliceParks)
		rows[3][i] = float64(r.AvgAdmissionWait()) / 1e6
		rows[4][i] = fragP99(r)
	})
	tab := &metrics.Table{
		Title:  "Fragmentation study: slice placement on 4 MIG GPUs (mixed 1g-7g tenants)",
		Labels: fragPolicies,
	}
	tab.Add("Stranded", rows[0])
	tab.Add("Carved", rows[1])
	tab.Add("Parked", rows[2])
	tab.Add("AdmitWait(s)", rows[3])
	tab.Add("p99(s)", rows[4])
	return tab
}
