package experiments

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/workload"
)

// smallSuite keeps test runtime bounded: a representative subset of pairs
// (compute-heavy, transfer-heavy, light) and short streams.
func smallSuite() *Suite {
	ps := workload.Pairs()
	return NewSuite(Options{
		Seed:     1,
		Requests: 8,
		Pairs:    []workload.Pair{ps[0], ps[1], ps[16], ps[23]}, // A, B, Q, X
		Apps: []workload.Kind{workload.DXTC, workload.Scan,
			workload.MonteCarlo, workload.Gaussian},
	})
}

func avgRow(t *testing.T, tab *metrics.Table, name string) float64 {
	t.Helper()
	row := tab.Row(name)
	if row == nil {
		t.Fatalf("series %q missing from %s", name, tab.Title)
	}
	return row[len(row)-1] // AVG column
}

func TestTableIMatchesCalibration(t *testing.T) {
	s := smallSuite()
	tab := s.TableI()
	for i, k := range s.Options().Apps {
		spec := workload.Specs[k]
		gotGPU := tab.Row("GPU Time %")[i]
		if math.Abs(gotGPU-spec.GPUPct) > 5 {
			t.Errorf("%v GPU%% = %.2f, want ≈%.2f", k, gotGPU, spec.GPUPct)
		}
		gotRT := tab.Row("Runtime(s)")[i]
		if math.Abs(gotRT-spec.SoloRuntime.Seconds())/spec.SoloRuntime.Seconds() > 0.05 {
			t.Errorf("%v runtime = %.2fs, want ≈%v", k, gotRT, spec.SoloRuntime)
		}
	}
	if !strings.Contains(tab.Format(), "Table I") {
		t.Error("format lost the title")
	}
}

func TestFig1UtilizationClasses(t *testing.T) {
	s := NewSuite(Options{Seed: 1, Requests: 4,
		Apps: []workload.Kind{workload.DXTC, workload.Gaussian}})
	tab := s.Fig1()
	dcCompute := tab.Row("Compute %")[0]
	gaCompute := tab.Row("Compute %")[1]
	if dcCompute <= gaCompute {
		t.Fatalf("DC compute util %.1f%% should exceed GA %.1f%%", dcCompute, gaCompute)
	}
	if dcCompute < 30 {
		t.Fatalf("DC compute util %.1f%% implausibly low", dcCompute)
	}
	if gaCompute > 5 {
		t.Fatalf("GA compute util %.1f%% implausibly high", gaCompute)
	}
}

func TestFig2ConcurrentBeatsSequential(t *testing.T) {
	s := NewSuite(Options{Seed: 1, Requests: 5})
	r := s.Fig2()
	if r.ConcMakespan >= r.SeqMakespan {
		t.Fatalf("concurrent makespan %v not below sequential %v", r.ConcMakespan, r.SeqMakespan)
	}
	// Context packing removes the driver's context-switch stalls: the
	// sequential timeline is riddled with "glitches", the concurrent one
	// nearly free of them (the paper's Figure 2 contrast).
	if r.ConcGlitches*10 >= r.SeqGlitches {
		t.Fatalf("glitches: concurrent %d vs sequential %d — packing lost its effect",
			r.ConcGlitches, r.SeqGlitches)
	}
	out := r.Format(60)
	if !strings.Contains(out, "sequential") || !strings.Contains(out, "concurrent") {
		t.Fatalf("Format output malformed:\n%s", out)
	}
}

func TestFig9Orderings(t *testing.T) {
	s := smallSuite()
	tab := s.Fig9()
	if len(tab.Labels) != len(s.Options().Apps)+1 {
		t.Fatalf("labels = %v", tab.Labels)
	}
	// Every policy must on average beat the CUDA runtime, and each Strings
	// variant must beat its Rain counterpart.
	for _, name := range []string{"GRR", "GMin", "GWtMin"} {
		rain := avgRow(t, tab, name+"-Rain")
		str := avgRow(t, tab, name+"-Strings")
		if rain <= 1.0 {
			t.Errorf("%s-Rain avg %.2f ≤ 1 vs CUDA", name, rain)
		}
		if str <= rain {
			t.Errorf("%s: Strings %.2f not above Rain %.2f", name, str, rain)
		}
	}
}

func TestFig10ShapeHolds(t *testing.T) {
	s := smallSuite()
	tab := s.Fig10()
	grrRain := avgRow(t, tab, "GRR-Rain")
	grrStr := avgRow(t, tab, "GRR-Strings")
	gminStr := avgRow(t, tab, "GMin-Strings")
	if grrRain <= 1 {
		t.Errorf("GRR-Rain avg %.2f; supernode sharing should beat 1-node", grrRain)
	}
	if grrStr <= grrRain {
		t.Errorf("GRR-Strings %.2f not above GRR-Rain %.2f", grrStr, grrRain)
	}
	if gminStr <= grrRain {
		t.Errorf("GMin-Strings %.2f not above GRR-Rain %.2f", gminStr, grrRain)
	}
}

func TestFig11FairnessOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep; skipped with -short (race gate)")
	}
	ps := workload.Pairs()
	s := NewSuite(Options{Seed: 1, Requests: 6,
		Pairs: []workload.Pair{ps[1], ps[13]}}) // DC-MC, MM-MC: contended mixes
	tab := s.Fig11()
	cuda := avgRow(t, tab, "CUDA")
	strTFS := avgRow(t, tab, "TFS-Strings")
	if strTFS <= cuda {
		t.Fatalf("TFS-Strings fairness %.3f not above CUDA %.3f", strTFS, cuda)
	}
	if strTFS < 0.9 {
		t.Fatalf("TFS-Strings fairness %.3f too low", strTFS)
	}
	for _, v := range tab.Row("TFS-Rain") {
		if v <= 0 || v > 1.0001 {
			t.Fatalf("Jain value %v out of range", v)
		}
	}
}

func TestFig12And13Orderings(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep; skipped with -short (race gate)")
	}
	s := smallSuite()
	f12 := s.Fig12()
	lasRain := avgRow(t, f12, "GWtMinLAS-Rain")
	lasStr := avgRow(t, f12, "GWtMinLAS-Strings")
	psStr := avgRow(t, f12, "GWtMinPS-Strings")
	if lasStr <= lasRain {
		t.Errorf("LAS-Strings %.2f not above LAS-Rain %.2f", lasStr, lasRain)
	}
	if psStr <= lasRain {
		t.Errorf("PS-Strings %.2f not above LAS-Rain %.2f", psStr, lasRain)
	}
	// PS trades ≤ a small throughput margin against LAS (paper: within 4%).
	if math.Abs(psStr-lasStr)/lasStr > 0.25 {
		t.Errorf("PS %.2f and LAS %.2f diverge too much", psStr, lasStr)
	}
	f13 := s.Fig13()
	if v := avgRow(t, f13, "LAS-Strings"); v <= 1 {
		t.Errorf("Fig13 LAS-Strings %.2f should exceed the shared-GRR baseline", v)
	}
	if v := avgRow(t, f13, "LAS-Rain"); v <= 0.8 {
		t.Errorf("Fig13 LAS-Rain %.2f implausible", v)
	}
}

func TestFig14And15FeedbackWins(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep; skipped with -short (race gate)")
	}
	s := smallSuite()
	f10 := s.Fig10()
	f14 := s.Fig14()
	f15 := s.Fig15()
	gwtStr := avgRow(t, f10, "GWtMin-Strings")
	for _, name := range []string{"RTF-Strings", "GUF-Strings"} {
		if v := avgRow(t, f14, name); v < gwtStr*0.93 {
			t.Errorf("%s %.2f far below GWtMin-Strings %.2f", name, v, gwtStr)
		}
	}
	if rtf, rain := avgRow(t, f14, "RTF-Strings"), avgRow(t, f14, "RTF-Rain"); rtf <= rain {
		t.Errorf("RTF-Strings %.2f not above RTF-Rain %.2f", rtf, rain)
	}
	for _, name := range []string{"DTF-Strings", "MBF-Strings"} {
		if v := avgRow(t, f15, name); v <= 1 {
			t.Errorf("%s %.2f should exceed the 1-node baseline", name, v)
		}
	}
}

func TestSuiteCachingSharesBaselines(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep; skipped with -short (race gate)")
	}
	s := smallSuite()
	s.Fig10()
	runs := s.Runs
	s.Fig12() // reuses the per-pair 1N baselines
	extra := s.Runs - runs
	want := 3 * len(s.Options().Pairs) // only the three policy runs per pair
	if extra != want {
		t.Fatalf("Fig12 added %d runs, want %d (baseline cache miss?)", extra, want)
	}
	s.Fig12()
	if s.Runs != runs+extra {
		t.Fatal("repeat Fig12 re-ran scenarios")
	}
}

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep; skipped with -short (race gate)")
	}
	ps := workload.Pairs()
	s := NewSuite(Options{Seed: 1, Requests: 5, Pairs: ps[:1]})
	for _, tab := range []*metrics.Table{
		s.AblationContextSwitch(),
		s.AblationCopyEngines(),
		s.AblationRemoteBandwidth(),
		s.AblationLASDecay(),
		s.AblationAccountingLag(),
		s.AblationArbiter(),
	} {
		if len(tab.Series) == 0 || len(tab.Labels) == 0 {
			t.Fatalf("ablation %q empty", tab.Title)
		}
		for _, ser := range tab.Series {
			for _, v := range ser.Values {
				if v < 0 || math.IsNaN(v) {
					t.Fatalf("ablation %q has bad value %v", tab.Title, v)
				}
			}
		}
	}
}

func TestAblationContextSwitchShape(t *testing.T) {
	ps := workload.Pairs()
	s := NewSuite(Options{Seed: 1, Requests: 6, Pairs: ps[:1]})
	tab := s.AblationContextSwitch()
	rain := tab.Row("Rain")
	strs := tab.Row("Strings")
	// Rain degrades with switch cost; Strings is flat (no switches).
	if rain[len(rain)-1] <= rain[0] {
		t.Errorf("Rain completion %.2f..%.2f not increasing with switch cost", rain[0], rain[len(rain)-1])
	}
	spread := math.Abs(strs[len(strs)-1]-strs[0]) / strs[0]
	if spread > 0.02 {
		t.Errorf("Strings varies %.1f%% with switch cost; packing should isolate it", 100*spread)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Requests <= 0 || o.LambdaFactor <= 0 || o.FairHorizon <= 0 {
		t.Fatalf("defaults missing: %+v", o)
	}
	if len(o.Pairs) != 24 || len(o.Apps) != 10 {
		t.Fatalf("defaults: %d pairs, %d apps", len(o.Pairs), len(o.Apps))
	}
	if o.longRequests() >= o.Requests {
		t.Fatal("long streams should be shorter than short streams")
	}
}

func TestAblationAppStyleOrdering(t *testing.T) {
	s := NewSuite(Options{Seed: 1, Requests: 6})
	tab := s.AblationAppStyle()
	for i := range tab.Labels {
		cudaSync := tab.Row("CUDA/sync")[i]
		cudaPipe := tab.Row("CUDA/pipelined")[i]
		strSync := tab.Row("Strings/sync")[i]
		strPipe := tab.Row("Strings/pipelined")[i]
		// Hand pipelining never hurts, and an unmodified app under Strings
		// beats even the hand-tuned app on the bare runtime.
		if cudaPipe > cudaSync*1.02 || strPipe > strSync*1.02 {
			t.Errorf("%s: pipelining hurt (%v > %v or %v > %v)",
				tab.Labels[i], cudaPipe, cudaSync, strPipe, strSync)
		}
		if strSync >= cudaPipe {
			t.Errorf("%s: Strings/sync %.1fs not below CUDA/pipelined %.1fs",
				tab.Labels[i], strSync, cudaPipe)
		}
	}
}

func TestParallelWorkersDeterministic(t *testing.T) {
	run := func(workers int) []float64 {
		ps := workload.Pairs()
		s := NewSuite(Options{Seed: 1, Requests: 6, Workers: workers, Pairs: ps[:3]})
		return s.Fig10().Row("GWtMin-Strings")
	}
	a, b := run(1), run(4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("worker count changed results: %v vs %v", a, b)
		}
	}
}

// TestSweepParallelEqualsSequential is the engine's end-to-end golden
// property on real experiment grids: whole figure tables — including a
// multi-replication run exercising the FoldSeed replication seeds — are
// deeply equal at Workers=1 (the sequential reference) and Workers=8 (an
// oversubscribed pool on any core count).
func TestSweepParallelEqualsSequential(t *testing.T) {
	ps := workload.Pairs()
	build := func(workers int) []*metrics.Table {
		s := NewSuite(Options{
			Seed:     1,
			Requests: 4,
			Seeds:    2,
			Workers:  workers,
			Pairs:    []workload.Pair{ps[1], ps[16]},
			Apps:     []workload.Kind{workload.MonteCarlo, workload.Gaussian},
		})
		return []*metrics.Table{s.Fig9(), s.Fig11(), s.Fig13(), s.Fig15()}
	}
	seq := build(1)
	par := build(8)
	for i := range seq {
		if !reflect.DeepEqual(seq[i], par[i]) {
			t.Errorf("%s: parallel table diverged from sequential", seq[i].Title)
		}
	}
}

func TestCSVOutput(t *testing.T) {
	s := NewSuite(Options{Seed: 1, Requests: 4,
		Apps: []workload.Kind{workload.Gaussian}})
	csv := s.TableI().CSV()
	if !strings.HasPrefix(csv, "label,") || !strings.Contains(csv, "GA,") {
		t.Fatalf("CSV malformed:\n%s", csv)
	}
	if strings.Count(csv, "\n") != 2 {
		t.Fatalf("CSV rows = %d lines:\n%s", strings.Count(csv, "\n"), csv)
	}
}

func TestHeadlineTable(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep; skipped with -short (race gate)")
	}
	s := smallSuite()
	tab := s.Headline()
	if len(tab.Labels) != 9 {
		t.Fatalf("claims = %d", len(tab.Labels))
	}
	paper := tab.Row("Paper")
	meas := tab.Row("Measured")
	ratio := tab.Row("Meas/Paper")
	for i := range tab.Labels {
		if paper[i] <= 0 || meas[i] <= 0 {
			t.Fatalf("claim %q degenerate: paper %v measured %v", tab.Labels[i], paper[i], meas[i])
		}
		if got := meas[i] / paper[i]; math.Abs(got-ratio[i]) > 1e-9 {
			t.Fatalf("ratio mismatch for %q", tab.Labels[i])
		}
	}
}

func TestSeedsPoolReplications(t *testing.T) {
	ps := workload.Pairs()
	one := NewSuite(Options{Seed: 1, Requests: 5, Pairs: ps[:1]})
	three := NewSuite(Options{Seed: 1, Requests: 5, Seeds: 3, Pairs: ps[:1]})
	one.Fig10()
	three.Fig10()
	if three.Runs != 3*one.Runs {
		t.Fatalf("runs %d vs %d; seeds not replicated", three.Runs, one.Runs)
	}
	// Pooled values are in the same ballpark but generally not identical.
	a := one.Fig10().Row("GRR-Strings")[0]
	b := three.Fig10().Row("GRR-Strings")[0]
	if b <= 0 || a <= 0 {
		t.Fatalf("degenerate values %v, %v", a, b)
	}
}
