package experiments

import "repro/internal/metrics"

// Headline assembles the paper's headline claims next to this
// reproduction's measurements, reusing (and caching) the underlying figure
// sweeps. The "MBF vs CUDA runtime" row chains Fig 15's MBF speedup over
// the single-node GRR baseline with Fig 9's GRR-Rain speedup over the bare
// runtime, the same arithmetic that yields the paper's 8.70×.
func (s *Suite) Headline() *metrics.Table {
	f9 := s.Fig9()
	f10 := s.Fig10()
	f11 := s.Fig11()
	f12 := s.Fig12()
	f15 := s.Fig15()

	avg := func(t *metrics.Table, series string) float64 {
		row := t.Row(series)
		if row == nil || len(row) == 0 {
			return 0
		}
		return row[len(row)-1]
	}

	type claim struct {
		label    string
		paper    float64
		measured float64
	}
	grrRain9 := avg(f9, "GRR-Rain")
	claims := []claim{
		{"Fig9 GRR-Strings vs CUDA (x)", 3.10, avg(f9, "GRR-Strings")},
		{"Fig9 GMin-Strings vs CUDA (x)", 4.90, avg(f9, "GMin-Strings")},
		{"Fig9 GWtMin-Strings vs CUDA (x)", 4.73, avg(f9, "GWtMin-Strings")},
		{"Fig10 GWtMin-Strings vs 1N-GRR (x)", 2.88, avg(f10, "GWtMin-Strings")},
		{"Fig11 TFS-Strings fairness (Jain)", 0.91, avg(f11, "TFS-Strings")},
		{"Fig12 LAS-Strings vs 1N-GRR (x)", 3.10, avg(f12, "GWtMinLAS-Strings")},
		{"Fig12 PS-Strings vs 1N-GRR (x)", 2.97, avg(f12, "GWtMinPS-Strings")},
		{"Fig15 MBF vs 1N-GRR (x)", 4.02, avg(f15, "MBF-Strings")},
		{"MBF vs CUDA runtime (x)", 8.70, avg(f15, "MBF-Strings") * grrRain9},
	}
	labels := make([]string, len(claims))
	paper := make([]float64, len(claims))
	measured := make([]float64, len(claims))
	ratio := make([]float64, len(claims))
	for i, c := range claims {
		labels[i] = c.label
		paper[i] = c.paper
		measured[i] = c.measured
		if c.paper > 0 {
			ratio[i] = c.measured / c.paper
		}
	}
	tab := &metrics.Table{
		Title:  "Headline claims: paper vs this reproduction",
		Labels: labels,
	}
	tab.Add("Paper", paper)
	tab.Add("Measured", measured)
	tab.Add("Meas/Paper", ratio)
	return tab
}
