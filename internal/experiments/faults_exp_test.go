package experiments

import (
	"reflect"
	"testing"

	"repro/internal/workload"
)

// faultSuite bounds the degradation experiment's runtime to two pairs.
func faultSuite(seed int64) *Suite {
	ps := workload.Pairs()
	return NewSuite(Options{
		Seed:     seed,
		Requests: 5,
		Pairs:    []workload.Pair{ps[0], ps[16]}, // A (compute-heavy), Q (light)
	})
}

func TestFaultsExperimentShape(t *testing.T) {
	tab := faultSuite(1).Faults()
	for _, series := range []string{
		"no-fault req/s", "pre-kill req/s", "post-kill req/s", "recovered", "lost",
	} {
		row := tab.Row(series)
		if row == nil {
			t.Fatalf("series %q missing from %s", series, tab.Title)
		}
		for i, v := range row {
			if v < 0 {
				t.Fatalf("%s[%d] = %v, negative", series, i, v)
			}
		}
	}
	// The degradation run must actually degrade: with half the pool gone,
	// post-kill throughput averages below the no-fault rate.
	if post, no := avgRow(t, tab, "post-kill req/s"), avgRow(t, tab, "no-fault req/s"); post >= no {
		t.Fatalf("post-kill %.3f >= no-fault %.3f: the kill had no effect", post, no)
	}
	// Every launched request is either recovered/finished or lost; the two
	// accounting series stay small but non-negative (checked above). With
	// recovery enabled, at least one pair should report recovered work.
	if rec := avgRow(t, tab, "recovered"); rec <= 0 {
		t.Fatalf("recovered average = %v: failover never engaged", rec)
	}
}

// TestFaultsExperimentDeterministic regenerates the table from scratch with
// the same seed: both the values and the rendered output must be identical.
func TestFaultsExperimentDeterministic(t *testing.T) {
	a := faultSuite(3).Faults()
	b := faultSuite(3).Faults()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed fault tables diverged:\n%s\nvs\n%s", a.Format(), b.Format())
	}
	if a.Format() != b.Format() {
		t.Fatal("rendered fault tables diverged")
	}
}
