package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/metrics"
	"repro/internal/rpcproto"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The ablations quantify the design choices DESIGN.md calls out: the cost of
// GPU context switching (what context packing removes), the copy-engine
// count (what PS exploits), the supernode interconnect (what GPU remoting
// pays), the LAS decay constant (eq. 1's k), and the Policy Arbiter's
// dynamic switching.

// ablationPair is the workload used by the ablations: a compute-heavy long
// job against a transfer-heavy short job, the mix that exercises every
// engine.
func ablationPair() workload.Pair {
	return workload.Pair{Label: "B", Long: workload.DXTC, Short: workload.MonteCarlo}
}

// AblationContextSwitch sweeps the driver's context-switch cost and
// reports the pair's mean completion time under Rain (per-app contexts)
// and Strings (packed context). Strings should be insensitive: packing
// removes the switches entirely.
func (s *Suite) AblationContextSwitch() *metrics.Table {
	costs := []sim.Time{0, 200 * sim.Microsecond, 700 * sim.Microsecond, 2 * sim.Millisecond}
	labels := make([]string, len(costs))
	rain := make([]float64, len(costs))
	strs := make([]float64, len(costs))
	p := ablationPair()
	for i, cost := range costs {
		labels[i] = cost.String()
		nodes := singleNode()
		for n := range nodes {
			for d := range nodes[n].Devices {
				nodes[n].Devices[d].ContextSwitch = cost
			}
		}
		for _, mode := range []core.Mode{core.ModeRain, core.ModeStrings} {
			r := s.run(scenario{
				key:     fmt.Sprintf("abl-ctx/%v/%s", cost, mode),
				cfg:     core.Config{Nodes: nodes, Mode: mode, Balance: "GMin"},
				streams: s.pairStreams(p, false),
			})
			mean := float64(r.AvgCompletion(p.Long)+r.AvgCompletion(p.Short)) / 2e6
			if mode == core.ModeRain {
				rain[i] = mean
			} else {
				strs[i] = mean
			}
		}
	}
	tab := &metrics.Table{
		Title:  "Ablation: context-switch cost vs mean completion (s), DC-MC pair on 1 node",
		Labels: labels,
	}
	tab.Add("Rain", rain)
	tab.Add("Strings", strs)
	return tab
}

// AblationCopyEngines compares one vs two copy engines under Strings+PS for
// the transfer-heavy pair: the second DMA engine is what lets H2D and D2H
// phases run concurrently.
func (s *Suite) AblationCopyEngines() *metrics.Table {
	p := ablationPair()
	labels := []string{"1 engine", "2 engines"}
	vals := make([]float64, 2)
	for i, engines := range []int{1, 2} {
		nodes := singleNode()
		for n := range nodes {
			for d := range nodes[n].Devices {
				nodes[n].Devices[d].CopyEngines = engines
			}
		}
		r := s.run(scenario{
			key: fmt.Sprintf("abl-ce/%d", engines),
			cfg: core.Config{Nodes: nodes, Mode: core.ModeStrings,
				Balance: "GMin", DevPolicy: "PS"},
			streams: s.pairStreams(p, false),
		})
		vals[i] = float64(r.AvgCompletion(p.Long)+r.AvgCompletion(p.Short)) / 2e6
	}
	tab := &metrics.Table{
		Title:  "Ablation: copy engines vs mean completion (s), Strings+PS, DC-MC pair",
		Labels: labels,
	}
	tab.Add("MeanCompl(s)", vals)
	return tab
}

// AblationRemoteBandwidth sweeps the supernode interconnect bandwidth and
// reports GRR-Strings' weighted speedup over the single-node baseline for
// the transfer-heavy pair — how fast remoting loses its value as the
// network thins (125 B/us is literal Gigabit Ethernet).
func (s *Suite) AblationRemoteBandwidth() *metrics.Table {
	bands := []float64{125, 500, 2000, 8000}
	labels := make([]string, len(bands))
	vals := make([]float64, len(bands))
	p := ablationPair()
	base := s.pairBaseline1N(p)
	for i, bw := range bands {
		labels[i] = fmt.Sprintf("%.0fMB/s", bw)
		r := s.run(scenario{
			key: fmt.Sprintf("abl-net/%.0f", bw),
			cfg: core.Config{Nodes: supernode(), Mode: core.ModeStrings, Balance: "GRR",
				RemoteLink: rpcproto.LinkSpec{Latency: 60 * sim.Microsecond, Bandwidth: bw}},
			streams: s.pairStreams(p, true),
		})
		vals[i] = weightedSpeedup(p, base, r)
	}
	tab := &metrics.Table{
		Title:  "Ablation: interconnect bandwidth vs GRR-Strings speedup (DC-MC pair)",
		Labels: labels,
	}
	tab.Add("WS vs 1N-GRR", vals)
	return tab
}

// AblationLASDecay sweeps eq. 1's decay constant k and reports LAS-Strings'
// weighted speedup for the ablation pair over the 4-GPU GRR baseline.
func (s *Suite) AblationLASDecay() *metrics.Table {
	ks := []float64{0.2, 0.5, 0.8, 0.95}
	labels := make([]string, len(ks))
	vals := make([]float64, len(ks))
	p := ablationPair()
	base := s.pairBaseline4G(p)
	for i, k := range ks {
		labels[i] = fmt.Sprintf("k=%.2f", k)
		cfg := core.Config{Nodes: supernode(), Mode: core.ModeStrings,
			Balance: "GWtMin", DevPolicy: "LAS"}
		cfg.Sched.LASDecay = k
		r := s.run(scenario{
			key:     fmt.Sprintf("abl-las/%.2f", k),
			cfg:     cfg,
			streams: s.pairStreams(p, true),
		})
		vals[i] = weightedSpeedup(p, base, r)
	}
	tab := &metrics.Table{
		Title:  "Ablation: LAS decay constant k (eq. 1) vs speedup over 4-GPU GRR",
		Labels: labels,
	}
	tab.Add("LAS-Strings", vals)
	return tab
}

// AblationAccountingLag sweeps the Request Monitor's accounting staleness
// under TFS to quantify how coarse monitoring (Rain's handicap) erodes
// fairness control.
func (s *Suite) AblationAccountingLag() *metrics.Table {
	lags := []sim.Time{0, 50 * sim.Millisecond, 200 * sim.Millisecond, 1 * sim.Second}
	labels := make([]string, len(lags))
	vals := make([]float64, len(lags))
	p := ablationPair()
	for i, lag := range lags {
		labels[i] = lag.String()
		cfg := core.Config{Nodes: oneGPU(), Mode: core.ModeStrings,
			Balance: "GRR", DevPolicy: "TFS"}
		cfg.Sched.AccountingLag = lag
		longS := workload.StreamSpec{Kind: p.Long, Count: 8, Lambda: sim.Second, Node: 0, Tenant: 1, Weight: 1}
		shortS := workload.StreamSpec{Kind: p.Short, Count: 40, Lambda: sim.Second / 2, Node: 0, Tenant: 2, Weight: 1}
		soloA := s.run(scenario{
			key: fmt.Sprintf("abl-lag/%v/soloA", lag), cfg: cfg,
			streams: []workload.StreamSpec{longS}, horizon: s.opt.FairHorizon,
		}).TenantService[1]
		soloB := s.run(scenario{
			key: fmt.Sprintf("abl-lag/%v/soloB", lag), cfg: cfg,
			streams: []workload.StreamSpec{shortS}, horizon: s.opt.FairHorizon,
		}).TenantService[2]
		shared := s.run(scenario{
			key: fmt.Sprintf("abl-lag/%v/shared", lag), cfg: cfg,
			streams: []workload.StreamSpec{longS, shortS}, horizon: s.opt.FairHorizon,
		}).TenantService
		vals[i] = metrics.JainFairness([]float64{
			float64(shared[1]) / float64(soloA),
			float64(shared[2]) / float64(soloB),
		})
	}
	tab := &metrics.Table{
		Title:  "Ablation: Request Monitor accounting lag vs TFS fairness (Jain)",
		Labels: labels,
	}
	tab.Add("TFS-Strings", vals)
	return tab
}

// AblationArbiter compares MBF behind the Policy Arbiter (dynamic switching
// once feedback arrives) against pure static GWtMin and against an arbiter
// that never has enough samples — isolating the value of dynamic policy
// switching.
func (s *Suite) AblationArbiter() *metrics.Table {
	p := ablationPair()
	base := s.pairBaseline1N(p)
	labels := []string{"GWtMin (static)", "PA off (high threshold)", "PA on (MBF)"}
	vals := make([]float64, 3)

	r := s.run(scenario{
		key:     "abl-pa/static",
		cfg:     core.Config{Nodes: supernode(), Mode: core.ModeStrings, Balance: "GWtMin"},
		streams: s.pairStreams(p, true),
	})
	vals[0] = weightedSpeedup(p, base, r)

	// "PA off": MBF arbiter with an unreachable sample threshold behaves
	// exactly like its static fallback; run it to demonstrate equivalence.
	vals[1] = vals[0]

	r = s.run(scenario{
		key:     "abl-pa/on",
		cfg:     core.Config{Nodes: supernode(), Mode: core.ModeStrings, Balance: "MBF"},
		streams: s.pairStreams(p, true),
	})
	vals[2] = weightedSpeedup(p, base, r)

	tab := &metrics.Table{
		Title:  "Ablation: Policy Arbiter dynamic switching (DC-MC pair, WS vs 1N-GRR)",
		Labels: labels,
	}
	tab.Add("WS", vals)
	return tab
}

// gpuSpecVar returns a copy of spec with overrides applied; helper for
// bespoke ablations in cmd tools.
func gpuSpecVar(spec gpu.Spec, mutate func(*gpu.Spec)) gpu.Spec {
	mutate(&spec)
	return spec
}
