package experiments

import (
	"testing"
)

// TestFragBeatsBaselines pins the study's headline ordering: the
// fragmentation-gradient policy strands strictly less capacity than GMin and
// GRR, without giving up tail latency.
func TestFragBeatsBaselines(t *testing.T) {
	s := NewSuite(Options{Seed: 1, Requests: 6})
	frag := s.fragRun("Frag")
	gmin := s.fragRun("GMin")
	grr := s.fragRun("GRR")

	if frag.StrandedRatio() >= gmin.StrandedRatio() {
		t.Fatalf("Frag stranded %.4f, GMin %.4f: want strictly less",
			frag.StrandedRatio(), gmin.StrandedRatio())
	}
	if frag.StrandedRatio() >= grr.StrandedRatio() {
		t.Fatalf("Frag stranded %.4f, GRR %.4f: want strictly less",
			frag.StrandedRatio(), grr.StrandedRatio())
	}
	// "No worse" on the p99 SLO, with a 1% numerical tolerance.
	if p, q := fragP99(frag), fragP99(gmin); p > q*1.01 {
		t.Fatalf("Frag p99 %.3fs worse than GMin %.3fs", p, q)
	}
	if p, q := fragP99(frag), fragP99(grr); p > q*1.01 {
		t.Fatalf("Frag p99 %.3fs worse than GRR %.3fs", p, q)
	}
	// Every tenant is eventually admitted under every policy.
	want := s.fragTenants()
	if frag.SliceCarves != want || gmin.SliceCarves != want || grr.SliceCarves != want {
		t.Fatalf("carves = %d/%d/%d, want %d each",
			frag.SliceCarves, gmin.SliceCarves, grr.SliceCarves, want)
	}
}

// TestFragPackingDeterministicAcrossWorkers requires the rendered study to
// be byte-identical at one worker and at eight.
func TestFragPackingDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) string {
		return NewSuite(Options{Seed: 1, Requests: 6, Workers: workers}).FragPacking().Format()
	}
	seq, par := run(1), run(8)
	if seq != par {
		t.Fatalf("FragPacking differs across worker counts:\nworkers=1:\n%s\nworkers=8:\n%s", seq, par)
	}
}
