package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TableI reproduces Table I: each benchmark run alone on the reference
// device under the bare runtime, reporting its measured GPU-time share,
// data-transfer share of GPU time, and kernel memory bandwidth (MB/s).
func (s *Suite) TableI() *metrics.Table {
	labels := make([]string, len(s.opt.Apps))
	gpuPct := make([]float64, len(s.opt.Apps))
	xferPct := make([]float64, len(s.opt.Apps))
	memBW := make([]float64, len(s.opt.Apps))
	runtime := make([]float64, len(s.opt.Apps))
	for i, k := range s.opt.Apps {
		labels[i] = k.String()
		cfg := core.Config{Seed: s.opt.Seed, Nodes: oneGPU(), Mode: core.ModeCUDA}
		c, err := core.New(cfg)
		if err != nil {
			panic(err)
		}
		r, err := c.Run([]workload.StreamSpec{{
			Kind: k, Count: 1, Lambda: 1, Node: 0, Tenant: 1, Weight: 1,
		}})
		if err != nil || len(r.Errors) > 0 {
			panic(fmt.Sprintf("experiments: TableI %v: %v %v", k, err, r.Errors))
		}
		dev := c.Devices()[0]
		total := float64(r.AvgCompletion(k))
		gputime := float64(dev.AppService(1))
		xfer := float64(dev.AppTransferTime(1))
		runtime[i] = total / 1e6
		if total > 0 {
			gpuPct[i] = 100 * gputime / total
		}
		if gputime > 0 {
			xferPct[i] = 100 * xfer / gputime
			memBW[i] = dev.AppMemTraffic(1) / gputime // B/us == MB/s
		}
	}
	tab := &metrics.Table{
		Title:  "Table I: measured benchmark characteristics (solo, Tesla C2050)",
		Labels: labels,
	}
	tab.Add("Runtime(s)", runtime)
	tab.Add("GPU Time %", gpuPct)
	tab.Add("Transfer %", xferPct)
	tab.Add("MemBW MB/s", memBW)
	return tab
}

// Fig1 reproduces Figure 1's characterization: the mean compute and memory
// utilization each application class drives on its GPU while serving an
// exponential request stream.
func (s *Suite) Fig1() *metrics.Table {
	labels := make([]string, len(s.opt.Apps))
	compute := make([]float64, len(s.opt.Apps))
	mem := make([]float64, len(s.opt.Apps))
	for i, k := range s.opt.Apps {
		labels[i] = k.String()
		cfg := core.Config{Seed: s.opt.Seed, Nodes: oneGPU(), Mode: core.ModeCUDA, Trace: true}
		c, err := core.New(cfg)
		if err != nil {
			panic(err)
		}
		n := 4
		r, err := c.Run([]workload.StreamSpec{{
			Kind: k, Count: n, LambdaFactor: s.opt.LambdaFactor,
			Node: 0, Tenant: 1, Weight: 1,
		}})
		if err != nil || len(r.Errors) > 0 {
			panic(fmt.Sprintf("experiments: Fig1 %v: %v %v", k, err, r.Errors))
		}
		cu, bu := c.Trace(0).MeanUtil(r.EndTime)
		compute[i] = 100 * cu
		mem[i] = 100 * bu
	}
	tab := &metrics.Table{
		Title:  "Fig 1: compute and memory utilization of cloud applications (%)",
		Labels: labels,
	}
	tab.Add("Compute %", compute)
	tab.Add("Memory %", mem)
	return tab
}

// Fig2Result carries Figure 2's utilization timelines: Monte Carlo request
// bursts executed sequentially (one GPU context per request, as separate
// processes) versus concurrently (one packed context, per-request streams).
type Fig2Result struct {
	Horizon sim.Time

	Seq  *gpu.UtilTrace
	Conc *gpu.UtilTrace

	SeqMeanUtil  float64
	ConcMeanUtil float64

	// Glitches counts the idle gaps between busy periods — the context
	// switching stalls visible in the paper's sequential timeline.
	SeqGlitches  int
	ConcGlitches int

	SeqMakespan  sim.Time
	ConcMakespan sim.Time
}

// Fig2 reproduces Figure 2: GPU utilization of Monte Carlo requests under
// sequential execution (separate contexts) vs concurrent execution over
// CUDA streams from one context.
func (s *Suite) Fig2() *Fig2Result {
	run := func(mode core.Mode) (*gpu.UtilTrace, sim.Time) {
		cfg := core.Config{
			Seed: s.opt.Seed, Nodes: oneGPU(), Mode: mode,
			Balance: "GRR", Trace: true,
		}
		c, err := core.New(cfg)
		if err != nil {
			panic(err)
		}
		n := s.opt.Requests
		if n > 6 {
			n = 6
		}
		r, err := c.Run([]workload.StreamSpec{{
			Kind: workload.MonteCarlo, Count: n, LambdaFactor: 0.3,
			Node: 0, Tenant: 1, Weight: 1,
		}})
		if err != nil || len(r.Errors) > 0 {
			panic(fmt.Sprintf("experiments: Fig2: %v %v", err, r.Errors))
		}
		return c.Trace(0), r.EndTime
	}
	seq, seqEnd := run(core.ModeCUDA)
	conc, concEnd := run(core.ModeStrings)
	horizon := seqEnd
	if concEnd > horizon {
		horizon = concEnd
	}
	res := &Fig2Result{
		Horizon: horizon, Seq: seq, Conc: conc,
		SeqMakespan: seqEnd, ConcMakespan: concEnd,
		SeqGlitches: seq.BusyGlitchCount(), ConcGlitches: conc.BusyGlitchCount(),
	}
	res.SeqMeanUtil = seq.MeanBusy(seqEnd)
	res.ConcMeanUtil = conc.MeanBusy(concEnd)
	return res
}

// Format renders the two timelines as ASCII strips.
func (r *Fig2Result) Format(width int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 2: Monte Carlo bursts, sequential vs concurrent execution\n")
	fmt.Fprintf(&b, "sequential  |%s| busy %.0f%%, %d glitches, makespan %v\n",
		r.Seq.RenderBusy(r.Horizon, width), 100*r.SeqMeanUtil, r.SeqGlitches, r.SeqMakespan)
	fmt.Fprintf(&b, "concurrent  |%s| busy %.0f%%, %d glitches, makespan %v\n",
		r.Conc.RenderBusy(r.Horizon, width), 100*r.ConcMeanUtil, r.ConcGlitches, r.ConcMakespan)
	return b.String()
}
