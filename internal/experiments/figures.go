package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// balCombo is one mode × balancing-policy system of Figures 9, 10 and 14.
type balCombo struct {
	name string
	mode core.Mode
	bal  string
}

// fig9Base runs (or recalls) Figure 9's bare-CUDA baseline for one
// application class. Grid cells call it on demand; the singleflight cache
// makes concurrent first calls collapse into a single simulation.
func (s *Suite) fig9Base(k workload.Kind) *core.RunResult {
	return s.run(scenario{
		key:     "fig9/cuda/" + k.String(),
		cfg:     core.Config{Nodes: singleNode(), Mode: core.ModeCUDA},
		streams: []workload.StreamSpec{s.stream(k, s.opt.Requests, 0, 1)},
	})
}

// Fig9 reproduces Figure 9: workload balancing on the single two-GPU node.
// For each application, a negative-exponential request stream is served by
// the bare CUDA runtime (the baseline) and by the three balancing policies
// under Rain and Strings; bars are relative speedup in average completion
// time. Paper averages: GRR/GMin/GWtMin-Rain 2.16/2.37/2.34×,
// GRR/GMin/GWtMin-Strings 3.10/4.90/4.73×.
//
// The whole figure — six systems × all applications, baselines included —
// is one flat cell grid: each cell pulls its class's CUDA baseline through
// the memoized cache, so there is no barrier between the baseline pass and
// the policy runs.
func (s *Suite) Fig9() *metrics.Table {
	labels := make([]string, len(s.opt.Apps))
	for i, k := range s.opt.Apps {
		labels[i] = k.String()
	}
	tab := &metrics.Table{
		Title:  "Fig 9: workload balancing vs CUDA runtime (relative speedup, 1 node x 2 GPUs)",
		Labels: labels,
	}
	combos := []balCombo{
		{"GRR-Rain", core.ModeRain, "GRR"},
		{"GMin-Rain", core.ModeRain, "GMin"},
		{"GWtMin-Rain", core.ModeRain, "GWtMin"},
		{"GRR-Strings", core.ModeStrings, "GRR"},
		{"GMin-Strings", core.ModeStrings, "GMin"},
		{"GWtMin-Strings", core.ModeStrings, "GWtMin"},
	}
	// Figure 9 streams a single application class per run; every class gets
	// the full stream length (queue dynamics are the point of the figure).
	rows := s.grid(len(combos), len(s.opt.Apps),
		func(r, c int) string {
			return fmt.Sprintf("fig9/%s/%s", combos[r].name, s.opt.Apps[c])
		},
		func(r, c int) float64 {
			cb, k := combos[r], s.opt.Apps[c]
			base := s.fig9Base(k).AvgCompletion(k)
			run := s.run(scenario{
				key:     fmt.Sprintf("fig9/%s/%s", cb.name, k),
				cfg:     core.Config{Nodes: singleNode(), Mode: cb.mode, Balance: cb.bal},
				streams: []workload.StreamSpec{s.stream(k, s.opt.Requests, 0, 1)},
			})
			if avg := run.AvgCompletion(k); avg > 0 {
				return float64(base) / float64(avg)
			}
			return 0
		})
	for ri, cb := range combos {
		tab.Add(cb.name, rows[ri])
	}
	return tab.WithAverage()
}

// Fig10 reproduces Figure 10: GPU sharing on the emulated 4-GPU supernode
// over the 24 workload pairs, weighted speedup vs the single-node GRR
// baseline. Paper averages: Rain 1.60/1.80/1.82×, Strings 2.64/2.69/2.88×.
func (s *Suite) Fig10() *metrics.Table {
	tab := &metrics.Table{
		Title:  "Fig 10: GPU sharing on the 4-GPU supernode (weighted speedup vs 1-node GRR)",
		Labels: s.pairLabels(),
	}
	combos := []balCombo{
		{"GRR-Rain", core.ModeRain, "GRR"},
		{"GMin-Rain", core.ModeRain, "GMin"},
		{"GWtMin-Rain", core.ModeRain, "GWtMin"},
		{"GRR-Strings", core.ModeStrings, "GRR"},
		{"GMin-Strings", core.ModeStrings, "GMin"},
		{"GWtMin-Strings", core.ModeStrings, "GWtMin"},
	}
	rows := s.grid(len(combos), len(s.opt.Pairs),
		func(r, c int) string {
			return fmt.Sprintf("fig10/%s/%s", combos[r].name, s.opt.Pairs[c].Label)
		},
		func(r, c int) float64 {
			cb, p := combos[r], s.opt.Pairs[c]
			run := s.run(scenario{
				key:     fmt.Sprintf("fig10/%s/%s", cb.name, p.Label),
				cfg:     core.Config{Nodes: supernode(), Mode: cb.mode, Balance: cb.bal},
				streams: s.pairStreams(p, true),
			})
			return weightedSpeedup(p, s.pairBaseline1N(p), run)
		})
	for ri, cb := range combos {
		tab.Add(cb.name, rows[ri])
	}
	return tab.WithAverage()
}

// Fig11 reproduces Figure 11: Jain fairness of equal-share pairs on one
// shared GPU under the bare CUDA runtime, TFS-Rain and TFS-Strings.
// Fairness is the Jain index over per-tenant service rates in a fixed
// contention window, each normalized by the tenant's solo rate. Paper
// averages: ~80.5% CUDA, ~84.9% TFS-Rain, 91% TFS-Strings.
func (s *Suite) Fig11() *metrics.Table {
	tab := &metrics.Table{
		Title:  "Fig 11: fairness of equal-share tenants on one GPU (Jain index)",
		Labels: s.pairLabels(),
	}
	type system struct {
		name string
		mode core.Mode
		dev  string
	}
	systems := []system{
		{"CUDA", core.ModeCUDA, ""},
		{"TFS-Rain", core.ModeRain, "TFS"},
		{"TFS-Strings", core.ModeStrings, "TFS"},
	}
	// Saturating streams: both tenants stay backlogged through the window.
	longStream := func(k workload.Kind, tenant int64) workload.StreamSpec {
		return workload.StreamSpec{Kind: k, Count: 8, Lambda: sim.Second, Node: 0, Tenant: tenant, Weight: 1}
	}
	shortStream := func(k workload.Kind, tenant int64) workload.StreamSpec {
		return workload.StreamSpec{Kind: k, Count: 40, Lambda: sim.Second / 2, Node: 0, Tenant: tenant, Weight: 1}
	}
	// Each cell needs its system's two solo runs and the shared run; the
	// solo scenarios recur across pairs sharing an application class, and
	// the cache collapses those to one simulation each.
	rows := s.grid(len(systems), len(s.opt.Pairs),
		func(r, c int) string {
			return fmt.Sprintf("fig11/%s/pair/%s", systems[r].name, s.opt.Pairs[c].Label)
		},
		func(r, c int) float64 {
			sys, p := systems[r], s.opt.Pairs[c]
			cfg := core.Config{Nodes: oneGPU(), Mode: sys.mode, Balance: "GRR", DevPolicy: sys.dev}
			soloA := s.run(scenario{
				key:     fmt.Sprintf("fig11/%s/solo/%s", sys.name, p.Long),
				cfg:     cfg,
				streams: []workload.StreamSpec{longStream(p.Long, 1)},
				horizon: s.opt.FairHorizon,
			}).TenantService[1]
			soloB := s.run(scenario{
				key:     fmt.Sprintf("fig11/%s/solo/%s", sys.name, p.Short),
				cfg:     cfg,
				streams: []workload.StreamSpec{shortStream(p.Short, 2)},
				horizon: s.opt.FairHorizon,
			}).TenantService[2]
			shared := s.run(scenario{
				key:     fmt.Sprintf("fig11/%s/pair/%s", sys.name, p.Label),
				cfg:     cfg,
				streams: []workload.StreamSpec{longStream(p.Long, 1), shortStream(p.Short, 2)},
				horizon: s.opt.FairHorizon,
			}).TenantService
			xa, xb := 0.0, 0.0
			if soloA > 0 {
				xa = float64(shared[1]) / float64(soloA)
			}
			if soloB > 0 {
				xb = float64(shared[2]) / float64(soloB)
			}
			return metrics.JainFairness([]float64{xa, xb})
		})
	for ri, sys := range systems {
		tab.Add(sys.name, rows[ri])
	}
	return tab.WithAverage()
}

// fig12Combos are the throughput-oriented device-scheduling systems of
// Figures 12 and 13.
type devCombo struct {
	name string
	mode core.Mode
	dev  string
}

func fig12Combos() []devCombo {
	return []devCombo{
		{"GWtMinLAS-Rain", core.ModeRain, "LAS"},
		{"GWtMinLAS-Strings", core.ModeStrings, "LAS"},
		{"GWtMinPS-Strings", core.ModeStrings, "PS"},
	}
}

// fig12Run executes one pair under a Figure 12 combo (memoized; Figure 13
// reuses the same runs against its own baseline).
func (s *Suite) fig12Run(cb devCombo, p workload.Pair) *core.RunResult {
	return s.run(scenario{
		key: fmt.Sprintf("fig12/%s/%s", cb.name, p.Label),
		cfg: core.Config{Nodes: supernode(), Mode: cb.mode,
			Balance: "GWtMin", DevPolicy: cb.dev},
		streams: s.pairStreams(p, true),
	})
}

// Fig12 reproduces Figure 12: GPU scheduling (LAS, PS) combined with
// GWtMin balancing on the supernode, weighted speedup vs the single-node
// GRR baseline. Paper averages: 2.18× (LAS-Rain), 3.10× (LAS-Strings),
// 2.97× (PS-Strings).
func (s *Suite) Fig12() *metrics.Table {
	tab := &metrics.Table{
		Title:  "Fig 12: GPU scheduling + sharing (weighted speedup vs 1-node GRR)",
		Labels: s.pairLabels(),
	}
	combos := fig12Combos()
	rows := s.grid(len(combos), len(s.opt.Pairs),
		func(r, c int) string {
			return fmt.Sprintf("fig12/%s/%s", combos[r].name, s.opt.Pairs[c].Label)
		},
		func(r, c int) float64 {
			p := s.opt.Pairs[c]
			return weightedSpeedup(p, s.pairBaseline1N(p), s.fig12Run(combos[r], p))
		})
	for ri, cb := range combos {
		tab.Add(cb.name, rows[ri])
	}
	return tab.WithAverage()
}

// Fig13 reproduces Figure 13: the same scheduling policies measured against
// the 4-GPU shared GRR baseline, isolating the device-scheduling benefit.
// Paper averages: 1.40× (LAS-Rain), 1.95× (LAS-Strings), 1.90× (PS-Strings).
func (s *Suite) Fig13() *metrics.Table {
	tab := &metrics.Table{
		Title:  "Fig 13: GPU scheduling alone (weighted speedup vs 4-GPU shared GRR)",
		Labels: s.pairLabels(),
	}
	combos := fig12Combos()
	names := []string{"LAS-Rain", "LAS-Strings", "PS-Strings"}
	rows := s.grid(len(combos), len(s.opt.Pairs),
		func(r, c int) string {
			return fmt.Sprintf("fig13/%s/%s", names[r], s.opt.Pairs[c].Label)
		},
		func(r, c int) float64 {
			p := s.opt.Pairs[c]
			return weightedSpeedup(p, s.pairBaseline4G(p), s.fig12Run(combos[r], p))
		})
	for ri, name := range names {
		tab.Add(name, rows[ri])
	}
	return tab.WithAverage()
}

// Fig14 reproduces Figure 14: feedback-based load balancing (RTF, GUF) on
// the supernode vs the single-node GRR baseline. Paper averages: RTF-Rain
// 2.22×, GUF-Rain 2.51×, RTF-Strings 3.23×, GUF-Strings 3.96×.
func (s *Suite) Fig14() *metrics.Table {
	tab := &metrics.Table{
		Title:  "Fig 14: feedback-based load balancing (weighted speedup vs 1-node GRR)",
		Labels: s.pairLabels(),
	}
	combos := []balCombo{
		{"RTF-Rain", core.ModeRain, "RTF"},
		{"GUF-Rain", core.ModeRain, "GUF"},
		{"RTF-Strings", core.ModeStrings, "RTF"},
		{"GUF-Strings", core.ModeStrings, "GUF"},
	}
	rows := s.grid(len(combos), len(s.opt.Pairs),
		func(r, c int) string {
			return fmt.Sprintf("fig14/%s/%s", combos[r].name, s.opt.Pairs[c].Label)
		},
		func(r, c int) float64 {
			cb, p := combos[r], s.opt.Pairs[c]
			run := s.run(scenario{
				key:     fmt.Sprintf("fig14/%s/%s", cb.name, p.Label),
				cfg:     core.Config{Nodes: supernode(), Mode: cb.mode, Balance: cb.bal},
				streams: s.pairStreams(p, true),
			})
			return weightedSpeedup(p, s.pairBaseline1N(p), run)
		})
	for ri, cb := range combos {
		tab.Add(cb.name, rows[ri])
	}
	return tab.WithAverage()
}

// Fig15 reproduces Figure 15: the Strings-specific feedback policies DTF
// and MBF, which exploit CUDA streams and context packing. Paper averages:
// 3.73× (DTF), 4.02× (MBF) vs the single-node GRR baseline — 8.70× vs the
// bare CUDA runtime.
func (s *Suite) Fig15() *metrics.Table {
	tab := &metrics.Table{
		Title:  "Fig 15: Strings-specific feedback policies (weighted speedup vs 1-node GRR)",
		Labels: s.pairLabels(),
	}
	bals := []string{"DTF", "MBF"}
	rows := s.grid(len(bals), len(s.opt.Pairs),
		func(r, c int) string {
			return fmt.Sprintf("fig15/%s/%s", bals[r], s.opt.Pairs[c].Label)
		},
		func(r, c int) float64 {
			bal, p := bals[r], s.opt.Pairs[c]
			run := s.run(scenario{
				key:     fmt.Sprintf("fig15/%s/%s", bal, p.Label),
				cfg:     core.Config{Nodes: supernode(), Mode: core.ModeStrings, Balance: bal},
				streams: s.pairStreams(p, true),
			})
			return weightedSpeedup(p, s.pairBaseline1N(p), run)
		})
	for ri, bal := range bals {
		tab.Add(bal+"-Strings", rows[ri])
	}
	return tab.WithAverage()
}
