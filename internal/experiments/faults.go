package experiments

import (
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/interpose"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// faultRecovery is the interposer recovery configuration used by the
// degradation experiment. The call timeout must comfortably exceed the
// longest healthy blocking call (a device sync behind a contended queue can
// wait many virtual seconds), or the failure detector would mark live GPUs
// Suspect and distort placement in the no-fault baseline.
func faultRecovery() interpose.Recovery {
	return interpose.Recovery{CallTimeout: 60 * sim.Second}
}

// Faults measures graceful degradation: the Figure 10 supernode workload
// under GMin-Strings with recovery enabled, re-run with node 1 (two of the
// four GPUs) killed halfway through the baseline's makespan. For every pair
// it reports sustained throughput without the fault, throughput before and
// after the kill, and how many in-flight requests were recovered onto
// surviving GPUs versus lost.
func (s *Suite) Faults() *metrics.Table {
	tab := &metrics.Table{
		Title:  "Degradation: node 1 killed at half-makespan (GMin-Strings, 4-GPU supernode)",
		Labels: s.pairLabels(),
	}
	n := len(s.opt.Pairs)
	noFault := make([]float64, n)
	preKill := make([]float64, n)
	postKill := make([]float64, n)
	recovered := make([]float64, n)
	lost := make([]float64, n)
	s.forEach(n, func(i int) {
		p := s.opt.Pairs[i]
		cfg := core.Config{
			Nodes:    supernode(),
			Mode:     core.ModeStrings,
			Balance:  "GMin",
			Recovery: faultRecovery(),
		}
		base := s.run(scenario{
			key:     "faults/base/" + p.Label,
			cfg:     cfg,
			streams: s.pairStreams(p, true),
		})
		killAt := base.EndTime / 2
		cfg.Faults = faults.Plan{Faults: []faults.Fault{
			{At: killAt, Kind: faults.KillNode, Node: 1},
		}}
		faulted := s.run(scenario{
			key:     "faults/kill/" + p.Label,
			cfg:     cfg,
			streams: s.pairStreams(p, true),
		})
		noFault[i] = s.throughput(base, 0, base.EndTime)
		preKill[i] = s.throughput(faulted, 0, killAt)
		postKill[i] = s.throughput(faulted, killAt, faulted.EndTime)
		recovered[i] = float64(faulted.Recovered) / float64(s.opt.Seeds)
		lost[i] = float64(faulted.Lost) / float64(s.opt.Seeds)
	})
	tab.Add("no-fault req/s", noFault)
	tab.Add("pre-kill req/s", preKill)
	tab.Add("post-kill req/s", postKill)
	tab.Add("recovered", recovered)
	tab.Add("lost", lost)
	return tab.WithAverage()
}

// throughput computes the run's completed-request rate (requests per
// virtual second) inside the window (from, to], averaged across seed
// replications. Lost requests carry an error and do not count.
func (s *Suite) throughput(r *core.RunResult, from, to sim.Time) float64 {
	if to <= from {
		return 0
	}
	done := 0
	for _, ev := range r.Requests {
		if ev.Err != "" {
			continue
		}
		at := sim.Time(ev.FinishedUS)
		if at > from && at <= to {
			done++
		}
	}
	window := (to - from).Seconds() * float64(s.opt.Seeds)
	return float64(done) / window
}
