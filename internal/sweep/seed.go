package sweep

// Seed folding: every experiment cell derives its random streams from
// (base seed, cell identity) alone, never from a shared RNG consumed in
// execution order. That is the property that makes the sweep engine's
// parallelism safe — a cell's results cannot depend on which worker ran it
// or on how many cells ran before it.
//
// The mixer is the splitmix64 finalizer (Steele, Lea & Flood, "Fast
// splittable pseudorandom number generators", OOPSLA'14): a bijective
// avalanche function, so distinct (base, parts...) tuples of equal arity
// map to distinct seeds and neighbouring cell indices land far apart in
// seed space instead of producing correlated rand.NewSource streams.

// splitmix64 is the splitmix64 finalizer round.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// FoldSeed derives a per-cell seed from a base seed and the cell's
// coordinates (replication number, grid axes, fault-plan index, ...).
// Folding is positional: FoldSeed(b, 1, 2) differs from FoldSeed(b, 2, 1).
func FoldSeed(base int64, parts ...uint64) int64 {
	h := splitmix64(uint64(base))
	for _, p := range parts {
		h = splitmix64(h ^ p)
	}
	return int64(h)
}

// KeySeed derives a per-cell seed from a base seed and a string cell key
// (FNV-1a over the key, then folded), for grids identified by labels rather
// than coordinates.
func KeySeed(base int64, key string) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return FoldSeed(base, h)
}
