package sweep

import "fmt"

// Grid enumerates the cartesian product of experiment axes (policy ×
// workload × seed × fault plan) in row-major order, mapping between flat
// cell indices and per-axis coordinates. Row-major flattening fixes the
// cell order once, which is what the engine's ordered collection (and thus
// byte-identical output) keys off.
type Grid struct {
	dims []int
	size int
}

// NewGrid builds a grid with the given axis lengths. Every length must be
// positive.
func NewGrid(dims ...int) Grid {
	if len(dims) == 0 {
		panic("sweep: NewGrid with no axes")
	}
	size := 1
	for _, d := range dims {
		if d <= 0 {
			panic(fmt.Sprintf("sweep: NewGrid axis length %d", d))
		}
		size *= d
	}
	return Grid{dims: append([]int(nil), dims...), size: size}
}

// Size returns the number of cells in the grid.
func (g Grid) Size() int { return g.size }

// Dims returns the number of axes.
func (g Grid) Dims() int { return len(g.dims) }

// Coord returns the coordinate of flat cell index on the given axis.
func (g Grid) Coord(flat, axis int) int {
	if flat < 0 || flat >= g.size {
		panic(fmt.Sprintf("sweep: flat index %d out of range [0,%d)", flat, g.size))
	}
	for a := len(g.dims) - 1; a > axis; a-- {
		flat /= g.dims[a]
	}
	return flat % g.dims[axis]
}

// Flat returns the flat cell index of the given coordinates (one per axis).
func (g Grid) Flat(coords ...int) int {
	if len(coords) != len(g.dims) {
		panic(fmt.Sprintf("sweep: Flat got %d coordinates for %d axes", len(coords), len(g.dims)))
	}
	flat := 0
	for a, c := range coords {
		if c < 0 || c >= g.dims[a] {
			panic(fmt.Sprintf("sweep: coordinate %d out of range [0,%d) on axis %d", c, g.dims[a], a))
		}
		flat = flat*g.dims[a] + c
	}
	return flat
}
