package sweep

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/metrics"
)

func TestRunOrdersResults(t *testing.T) {
	cells := make([]Cell[int], 100)
	for i := range cells {
		i := i
		cells[i] = Cell[int]{Key: fmt.Sprint(i), Run: func() int { return i * 3 }}
	}
	for _, par := range []int{1, 8} {
		got := Run(Engine{Parallel: par}, cells)
		for i, v := range got {
			if v != i*3 {
				t.Fatalf("parallel=%d: result[%d] = %d, want %d", par, i, v, i*3)
			}
		}
	}
}

// TestRunParallelEqualsSequential is the engine-level golden property: the
// same cell grid produces deeply equal results at Parallel 1 and 8.
func TestRunParallelEqualsSequential(t *testing.T) {
	build := func() []Cell[[]float64] {
		cells := make([]Cell[[]float64], 64)
		for i := range cells {
			i := i
			cells[i] = Cell[[]float64]{
				Key: fmt.Sprint(i),
				Run: func() []float64 {
					// Each cell derives its stream from its identity alone.
					rng := rand.New(rand.NewSource(FoldSeed(17, uint64(i))))
					out := make([]float64, 16)
					for j := range out {
						out[j] = rng.NormFloat64()
					}
					return out
				},
			}
		}
		return cells
	}
	seq := Run(Engine{Parallel: 1}, build())
	par := Run(Engine{Parallel: 8}, build())
	if !reflect.DeepEqual(seq, par) {
		t.Error("parallel run diverged from sequential run")
	}
}

// TestFoldSeedOrderIndependence is the seed-folding determinism property:
// per-cell RNG streams are identical whether cells are visited in order
// 0..N-1, shuffled, or concurrently.
func TestFoldSeedOrderIndependence(t *testing.T) {
	const n = 200
	draw := func(cell int) [4]int64 {
		rng := rand.New(rand.NewSource(FoldSeed(99, uint64(cell), 7)))
		var out [4]int64
		for j := range out {
			out[j] = rng.Int63()
		}
		return out
	}
	var inOrder [n][4]int64
	for i := 0; i < n; i++ {
		inOrder[i] = draw(i)
	}
	// Shuffled visit order.
	perm := rand.New(rand.NewSource(5)).Perm(n)
	for _, i := range perm {
		if got := draw(i); got != inOrder[i] {
			t.Fatalf("cell %d stream changed under shuffled execution", i)
		}
	}
	// Concurrent visit order.
	cells := make([]Cell[[4]int64], n)
	for i := range cells {
		i := i
		cells[i] = Cell[[4]int64]{Run: func() [4]int64 { return draw(i) }}
	}
	for i, got := range Run(Engine{Parallel: 8}, cells) {
		if got != inOrder[i] {
			t.Fatalf("cell %d stream changed under concurrent execution", i)
		}
	}
}

func TestFoldSeedDistinctAndPositional(t *testing.T) {
	seen := map[int64][]uint64{}
	for i := uint64(0); i < 1000; i++ {
		s := FoldSeed(1, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("FoldSeed collision: parts %v and [%d]", prev, i)
		}
		seen[s] = []uint64{i}
	}
	if FoldSeed(1, 2, 3) == FoldSeed(1, 3, 2) {
		t.Error("FoldSeed is not positional")
	}
	if FoldSeed(1, 2) == FoldSeed(2, 2) {
		t.Error("FoldSeed ignores the base seed")
	}
	if KeySeed(1, "fig10/GMin/B") == KeySeed(1, "fig10/GMin/C") {
		t.Error("KeySeed collision on sibling keys")
	}
	if KeySeed(1, "x") != KeySeed(1, "x") {
		t.Error("KeySeed is not deterministic")
	}
}

func TestGridRoundTrip(t *testing.T) {
	g := NewGrid(3, 4, 5)
	if g.Size() != 60 || g.Dims() != 3 {
		t.Fatalf("Size=%d Dims=%d, want 60, 3", g.Size(), g.Dims())
	}
	flat := 0
	for a := 0; a < 3; a++ {
		for b := 0; b < 4; b++ {
			for c := 0; c < 5; c++ {
				// Row-major order: last axis fastest.
				if got := g.Flat(a, b, c); got != flat {
					t.Fatalf("Flat(%d,%d,%d) = %d, want %d", a, b, c, got, flat)
				}
				if g.Coord(flat, 0) != a || g.Coord(flat, 1) != b || g.Coord(flat, 2) != c {
					t.Fatalf("Coord(%d) = (%d,%d,%d), want (%d,%d,%d)", flat,
						g.Coord(flat, 0), g.Coord(flat, 1), g.Coord(flat, 2), a, b, c)
				}
				flat++
			}
		}
	}
}

func TestGridPanicsOnBadInput(t *testing.T) {
	for name, fn := range map[string]func(){
		"no axes":       func() { NewGrid() },
		"zero axis":     func() { NewGrid(3, 0) },
		"flat range":    func() { NewGrid(2, 2).Coord(4, 0) },
		"coord range":   func() { NewGrid(2, 2).Flat(2, 0) },
		"coord arity":   func() { NewGrid(2, 2).Flat(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestTablesMergesInOrderAndDetectsConflicts(t *testing.T) {
	mk := func(name string, v float64) Cell[*metrics.Table] {
		return Cell[*metrics.Table]{Key: name, Run: func() *metrics.Table {
			tab := &metrics.Table{Labels: []string{"a", "b"}}
			tab.Add(name, []float64{v, v + 1})
			return tab
		}}
	}
	dst := &metrics.Table{Title: "t", Labels: []string{"a", "b"}}
	err := Tables(Engine{Parallel: 4}, dst, []Cell[*metrics.Table]{
		mk("s1", 1), mk("s2", 2), mk("s3", 3),
	})
	if err != nil {
		t.Fatalf("Tables: %v", err)
	}
	want := []string{"s1", "s2", "s3"}
	for i, s := range dst.Series {
		if s.Name != want[i] {
			t.Fatalf("series %d = %q, want %q (merge order)", i, s.Name, want[i])
		}
	}

	dup := &metrics.Table{Title: "t", Labels: []string{"a", "b"}}
	err = Tables(Engine{Parallel: 1}, dup, []Cell[*metrics.Table]{mk("s", 1), mk("s", 2)})
	if err == nil {
		t.Fatal("duplicate series merged silently")
	}
	var me *MergeError
	if !errors.As(err, &me) || me.Key != "s" {
		t.Fatalf("error %v does not name the conflicting cell", err)
	}
}
