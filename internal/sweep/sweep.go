// Package sweep is the deterministic parallel experiment engine: it
// decomposes experiment grids into independent cells, fans the cells out
// over internal/parallel's bounded worker pool, and collects the results in
// cell-index order, so every table, metric and report is byte-identical
// regardless of worker count.
//
// The cell model. A cell is one self-contained run of the simulator — one
// (policy, workload, seed, fault plan) point of a grid. Cells own their
// whole world: each builds (or borrows from a parallel.KernelArena and
// resets) a private kernel and cluster, derives its random streams from the
// base seed and its own identity via FoldSeed/KeySeed, and returns a value.
// Nothing flows between cells during execution; merging happens after, in
// index order, with conflicts (two cells producing the same row) surfaced
// as errors by metrics.Table.Merge rather than silently overwritten.
package sweep

import (
	"repro/internal/metrics"
	"repro/internal/parallel"
)

// Cell is one independent unit of an experiment grid.
type Cell[T any] struct {
	// Key names the cell (policy/workload/seed labels, "fig10/GMin/B").
	// Keys exist for logs, seed derivation and conflict reporting; the
	// engine itself orders by index, not key.
	Key string

	// Run executes the cell and returns its result. It must be
	// self-contained: no shared mutable state with other cells, no
	// dependence on execution order.
	Run func() T
}

// Engine executes cell grids.
type Engine struct {
	// Parallel bounds how many cells run concurrently: 0 selects
	// GOMAXPROCS, 1 forces the sequential reference execution. Results are
	// identical at any setting.
	Parallel int
}

// Run executes the cells and returns their results in cell-index order.
// A panic inside any cell propagates to the caller after all cells ran.
func Run[T any](e Engine, cells []Cell[T]) []T {
	return parallel.Map(len(cells), e.Parallel, func(i int) T {
		return cells[i].Run()
	})
}

// Tables executes cells that each produce a labeled table and merges the
// results in cell-index order into dst via metrics.Table.Merge, so a
// duplicate row key (two cells emitting the same series) is an error
// instead of a silent overwrite.
func Tables(e Engine, dst *metrics.Table, cells []Cell[*metrics.Table]) error {
	for i, part := range Run(e, cells) {
		if err := dst.Merge(part); err != nil {
			return &MergeError{Key: cells[i].Key, Err: err}
		}
	}
	return nil
}

// MergeError reports which cell's table failed to merge.
type MergeError struct {
	Key string
	Err error
}

func (e *MergeError) Error() string { return "sweep: cell " + e.Key + ": " + e.Err.Error() }

func (e *MergeError) Unwrap() error { return e.Err }
