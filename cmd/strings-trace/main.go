// strings-trace renders per-device utilization timelines (Figure 1/2 style)
// for a request stream under a chosen runtime mode.
//
// Usage:
//
//	strings-trace [-kind MC] [-count 6] [-mode cuda|rain|strings]
//	              [-balance GMin] [-lambda 0.4] [-width 80] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/stringsched"
)

var kinds = map[string]stringsched.Kind{
	"DC": stringsched.DXTC, "SC": stringsched.Scan, "BO": stringsched.BinomialOptions,
	"MM": stringsched.MatrixMultiply, "HI": stringsched.Histogram, "EV": stringsched.Eigenvalues,
	"BS": stringsched.BlackScholes, "MC": stringsched.MonteCarlo,
	"GA": stringsched.Gaussian, "SN": stringsched.SortingNetworks,
}

func main() {
	kindArg := flag.String("kind", "MC", "benchmark code (DC, SC, BO, MM, HI, EV, BS, MC, GA, SN)")
	count := flag.Int("count", 6, "requests in the stream")
	modeArg := flag.String("mode", "strings", "runtime: cuda, rain or strings")
	balance := flag.String("balance", "GMin", "workload balancing policy")
	lambda := flag.Float64("lambda", 0.4, "mean inter-arrival as a fraction of solo runtime")
	width := flag.Int("width", 80, "strip width")
	jsonOut := flag.String("json", "", "also write raw trace segments (JSON) to this file")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	kind, ok := kinds[strings.ToUpper(*kindArg)]
	if !ok {
		log.Fatalf("unknown benchmark %q", *kindArg)
	}
	var mode stringsched.Mode
	switch strings.ToLower(*modeArg) {
	case "cuda":
		mode = stringsched.ModeCUDA
	case "rain":
		mode = stringsched.ModeRain
	case "strings":
		mode = stringsched.ModeStrings
	default:
		log.Fatalf("unknown mode %q", *modeArg)
	}

	cluster, err := stringsched.NewCluster(stringsched.Config{
		Seed: *seed,
		Nodes: []stringsched.NodeConfig{
			{Devices: []stringsched.DeviceSpec{stringsched.Quadro2000, stringsched.TeslaC2050}},
		},
		Mode:    mode,
		Balance: *balance,
		Trace:   true,
	})
	if err != nil {
		log.Fatal(err)
	}
	r, err := cluster.Run([]stringsched.StreamSpec{{
		Kind: kind, Count: *count, LambdaFactor: *lambda,
		Node: 0, Tenant: 1, Weight: 1,
	}})
	if err != nil {
		log.Fatal(err)
	}
	if len(r.Errors) > 0 {
		log.Fatalf("application errors: %v", r.Errors)
	}

	fmt.Printf("%d %v requests under %v/%s, makespan %v\n\n", *count, kind, mode, *balance, r.EndTime)
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			log.Fatal(err)
		}
		for gid := range cluster.Devices() {
			if err := cluster.Trace(gid).WriteJSON(f); err != nil {
				log.Fatal(err)
			}
		}
		f.Close()
		fmt.Printf("raw traces written to %s\n\n", *jsonOut)
	}
	for gid, d := range cluster.Devices() {
		tr := cluster.Trace(gid)
		busy := tr.MeanBusy(r.EndTime)
		cu, bu := tr.MeanUtil(r.EndTime)
		fmt.Printf("GID %d %-12s |%s|\n", gid, d.Spec().Name, tr.RenderBusy(r.EndTime, *width))
		fmt.Printf("  busy %4.0f%%  compute %4.0f%%  mem-bw %4.0f%%  glitches %d\n\n",
			100*busy, 100*cu, 100*bu, tr.BusyGlitchCount())
	}
}
