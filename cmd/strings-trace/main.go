// strings-trace renders per-device utilization timelines (Figure 1/2 style)
// and per-request span timelines for a request stream under a chosen runtime
// mode.
//
// Usage:
//
//	strings-trace [-kind MC] [-count 6] [-mode cuda|rain|strings]
//	              [-balance GMin] [-lambda 0.4] [-width 80] [-seed 1]
//	              [-json out.json] [-trace out.json] [-jsonl out.jsonl]
//	              [-audit]
//
// -json writes the raw device-utilization segments; -trace writes the span
// stream as Chrome trace-event JSON (chrome://tracing), -jsonl as compact
// JSONL; -audit prints the balancer's decision-audit log.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/stringsched"
)

var kinds = map[string]stringsched.Kind{
	"DC": stringsched.DXTC, "SC": stringsched.Scan, "BO": stringsched.BinomialOptions,
	"MM": stringsched.MatrixMultiply, "HI": stringsched.Histogram, "EV": stringsched.Eigenvalues,
	"BS": stringsched.BlackScholes, "MC": stringsched.MonteCarlo,
	"GA": stringsched.Gaussian, "SN": stringsched.SortingNetworks,
}

// kindNames returns the benchmark codes, sorted, for error listings.
func kindNames() []string {
	names := make([]string, 0, len(kinds))
	for name := range kinds {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable CLI body: it parses args, validates every flag with
// an exit-1-and-list-the-valid-names failure mode, executes the scenario
// and renders the timelines.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("strings-trace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	kindArg := fs.String("kind", "MC", "benchmark code (DC, SC, BO, MM, HI, EV, BS, MC, GA, SN)")
	count := fs.Int("count", 6, "requests in the stream")
	modeArg := fs.String("mode", "strings", "runtime: cuda, rain or strings")
	balance := fs.String("balance", "GMin", "workload balancing policy")
	lambda := fs.Float64("lambda", 0.4, "mean inter-arrival as a fraction of solo runtime")
	width := fs.Int("width", 80, "strip width")
	jsonOut := fs.String("json", "", "write raw device-utilization segments (JSON) to this file")
	traceOut := fs.String("trace", "", "write the span stream as Chrome trace-event JSON to this file")
	jsonlOut := fs.String("jsonl", "", "write the span stream as compact JSONL to this file")
	audit := fs.Bool("audit", false, "print the balancer's decision-audit log")
	seed := fs.Int64("seed", 1, "simulation seed")
	if err := fs.Parse(args); err != nil {
		return 1
	}

	kind, ok := kinds[strings.ToUpper(*kindArg)]
	if !ok {
		fmt.Fprintf(stderr, "strings-trace: unknown benchmark %q; valid kinds: %s\n",
			*kindArg, strings.Join(kindNames(), ", "))
		return 1
	}
	var mode stringsched.Mode
	switch strings.ToLower(*modeArg) {
	case "cuda":
		mode = stringsched.ModeCUDA
	case "rain":
		mode = stringsched.ModeRain
	case "strings":
		mode = stringsched.ModeStrings
	default:
		fmt.Fprintf(stderr, "strings-trace: unknown mode %q; valid modes: cuda, rain, strings\n", *modeArg)
		return 1
	}
	validBalance := false
	for _, name := range stringsched.BalancingPolicies() {
		if name == *balance {
			validBalance = true
		}
	}
	if !validBalance {
		fmt.Fprintf(stderr, "strings-trace: unknown balancing policy %q; valid policies: %s\n",
			*balance, strings.Join(stringsched.BalancingPolicies(), ", "))
		return 1
	}
	if *count < 1 {
		fmt.Fprintf(stderr, "strings-trace: -count must be at least 1 (got %d)\n", *count)
		return 1
	}
	if *width < 1 {
		fmt.Fprintf(stderr, "strings-trace: -width must be at least 1 (got %d)\n", *width)
		return 1
	}
	if *lambda <= 0 {
		fmt.Fprintf(stderr, "strings-trace: -lambda must be positive (got %g)\n", *lambda)
		return 1
	}

	rec := stringsched.NewTraceRecorder()
	cluster, err := stringsched.NewCluster(stringsched.Config{
		Seed: *seed,
		Nodes: []stringsched.NodeConfig{
			{Devices: []stringsched.DeviceSpec{stringsched.Quadro2000, stringsched.TeslaC2050}},
		},
		Mode:     mode,
		Balance:  *balance,
		Trace:    true,
		Recorder: rec,
	})
	if err != nil {
		fmt.Fprintf(stderr, "strings-trace: %v\n", err)
		return 1
	}
	r, err := cluster.Run([]stringsched.StreamSpec{{
		Kind: kind, Count: *count, LambdaFactor: *lambda,
		Node: 0, Tenant: 1, Weight: 1,
	}})
	if err != nil {
		fmt.Fprintf(stderr, "strings-trace: %v\n", err)
		return 1
	}
	if len(r.Errors) > 0 {
		fmt.Fprintf(stderr, "strings-trace: application errors: %v\n", r.Errors)
		return 1
	}

	fmt.Fprintf(stdout, "%d %v requests under %v/%s, makespan %v\n\n", *count, kind, mode, *balance, r.EndTime)
	set := rec.Snapshot()
	if *jsonOut != "" {
		if err := writeFile(*jsonOut, func(w io.Writer) error {
			for gid := range cluster.Devices() {
				if err := cluster.Trace(gid).WriteJSON(w); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			fmt.Fprintf(stderr, "strings-trace: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "raw traces written to %s\n\n", *jsonOut)
	}
	if *traceOut != "" {
		if err := writeFile(*traceOut, set.WriteChrome); err != nil {
			fmt.Fprintf(stderr, "strings-trace: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "chrome trace (%d spans) written to %s — load it at chrome://tracing\n\n",
			len(set.Spans), *traceOut)
	}
	if *jsonlOut != "" {
		if err := writeFile(*jsonlOut, set.WriteJSONL); err != nil {
			fmt.Fprintf(stderr, "strings-trace: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "jsonl trace written to %s\n\n", *jsonlOut)
	}
	for gid, d := range cluster.Devices() {
		tr := cluster.Trace(gid)
		busy := tr.MeanBusy(r.EndTime)
		cu, bu := tr.MeanUtil(r.EndTime)
		fmt.Fprintf(stdout, "GID %d %-12s |%s|\n", gid, d.Spec().Name, tr.RenderBusy(r.EndTime, *width))
		fmt.Fprintf(stdout, "  busy %4.0f%%  compute %4.0f%%  mem-bw %4.0f%%  glitches %d\n\n",
			100*busy, 100*cu, 100*bu, tr.BusyGlitchCount())
	}
	fmt.Fprintf(stdout, "request timeline (%d spans, %d events, %d decisions):\n",
		len(set.Spans), len(set.Events), len(set.Decisions))
	if err := set.WriteTimeline(stdout); err != nil {
		fmt.Fprintf(stderr, "strings-trace: %v\n", err)
		return 1
	}
	if *audit {
		fmt.Fprintf(stdout, "\ndecision audit:\n")
		if err := set.WriteDecisions(stdout); err != nil {
			fmt.Fprintf(stderr, "strings-trace: %v\n", err)
			return 1
		}
	}
	return 0
}

// writeFile creates path and streams fn's output into it.
func writeFile(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
