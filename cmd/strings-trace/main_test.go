package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunRejectsInvalidFlags pins the CLI's failure mode: every invalid
// flag value exits 1 and the error names the valid alternatives, matching
// strings-bench's -exp behavior.
func TestRunRejectsInvalidFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want []string // substrings the stderr message must contain
	}{
		{"unknown kind", []string{"-kind", "ZZ"}, []string{"unknown benchmark", "MC", "DC", "SN"}},
		{"unknown mode", []string{"-mode", "vulkan"}, []string{"unknown mode", "cuda", "rain", "strings"}},
		{"unknown balance", []string{"-balance", "BOGUS"}, []string{"unknown balancing policy", "GRR", "GMin", "MBF"}},
		{"zero count", []string{"-count", "0"}, []string{"-count must be at least 1"}},
		{"negative count", []string{"-count", "-3"}, []string{"-count must be at least 1"}},
		{"zero width", []string{"-width", "0"}, []string{"-width must be at least 1"}},
		{"zero lambda", []string{"-lambda", "0"}, []string{"-lambda must be positive"}},
		{"unparsable flag", []string{"-count", "xyz"}, []string{"invalid value"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 1 {
				t.Fatalf("run(%v) = %d, want exit code 1", tc.args, code)
			}
			for _, want := range tc.want {
				if !strings.Contains(stderr.String(), want) {
					t.Errorf("stderr missing %q:\n%s", want, stderr.String())
				}
			}
		})
	}
}

// TestRunHappyPath runs a small scenario end to end and checks the exports
// land on disk in their advertised formats.
func TestRunHappyPath(t *testing.T) {
	dir := t.TempDir()
	chromePath := filepath.Join(dir, "trace.json")
	jsonlPath := filepath.Join(dir, "trace.jsonl")
	var stdout, stderr bytes.Buffer
	args := []string{
		"-kind", "MC", "-count", "2", "-mode", "strings", "-balance", "GMin",
		"-trace", chromePath, "-jsonl", jsonlPath, "-audit",
	}
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("run(%v) = %d, stderr:\n%s", args, code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"request timeline", "decision audit:", "GID 0", "GID 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q:\n%s", want, out)
		}
	}

	chrome, err := os.ReadFile(chromePath)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(chrome, &events); err != nil {
		t.Fatalf("chrome trace is not a JSON array: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("chrome trace is empty")
	}

	jsonl, err := os.ReadFile(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(jsonl), "\n"), "\n")
	if len(lines) == 0 {
		t.Fatal("jsonl trace is empty")
	}
	for i, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("jsonl line %d is not valid JSON: %v\n%s", i+1, err, line)
		}
		switch rec["t"] {
		case "span", "event", "decision":
		default:
			t.Fatalf("jsonl line %d has unknown record type %v", i+1, rec["t"])
		}
	}
}

// TestRunDeterministic pins that two identical invocations produce
// byte-identical stdout and exports.
func TestRunDeterministic(t *testing.T) {
	dir := t.TempDir()
	invoke := func(tag string) (string, []byte) {
		path := filepath.Join(dir, tag+".jsonl")
		var stdout, stderr bytes.Buffer
		args := []string{"-count", "3", "-jsonl", path}
		if code := run(args, &stdout, &stderr); code != 0 {
			t.Fatalf("run(%v) = %d, stderr:\n%s", args, code, stderr.String())
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// The export path differs between the two runs; strip it from the
		// comparison.
		return strings.ReplaceAll(stdout.String(), path, "OUT"), data
	}
	out1, data1 := invoke("a")
	out2, data2 := invoke("b")
	if out1 != out2 {
		t.Errorf("stdout differs between identical runs:\n--- first\n%s\n--- second\n%s", out1, out2)
	}
	if !bytes.Equal(data1, data2) {
		t.Error("jsonl export differs between identical runs")
	}
}
