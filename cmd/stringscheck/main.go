// Command stringscheck enforces the simulator's determinism, protocol, and
// hot-path invariants (DESIGN.md "Determinism invariants" and "Dataflow
// analysis and the hot-path contract") with nine analyzers:
//
//	simclock   — no wall-clock time in sim-driven packages
//	detrand    — no process-global math/rand; thread a seeded *rand.Rand
//	maporder   — no map-iteration order leaking into simulator state
//	rawgo      — no raw goroutines outside the kernel's baton chain
//	errflow    — no silently discarded errors on rpcproto/remoting paths
//	hotalloc   — no unjustified heap allocation reachable from a
//	             //strings:hotpath root (cross-package via exported facts)
//	poolsafe   — no use-after-release / double-release of pooled objects;
//	             pool-return methods must zero before storing
//	spanpair   — every trace span Begin reaches an End on all CFG exits
//	allowaudit — //lint:allow hygiene: unknown names, missing reasons,
//	             stale suppressions
//
// It runs two ways:
//
//	stringscheck [-json] ./...             # standalone, like a linter
//	go vet -vettool=$(which stringscheck) ./...   # as a vet unit checker
//
// In vettool mode cmd/go invokes the binary once per package with a
// vet.cfg file (plus -V=full and -flags probes, answered below); the
// per-package .vetx files carry the cross-package hot/alloc facts.
// With -json, diagnostics print to stdout as one sorted JSON array,
// byte-identical across runs of the same tree (CI archives it).
// Suppress a finding with: //lint:allow <analyzer> -- <reason>
package main

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/driver"
)

func main() {
	args := os.Args[1:]
	jsonOut := false
	patterns := args[:0:0]
	for _, a := range args {
		switch {
		case strings.HasPrefix(a, "-V"):
			printVersion()
			return
		case a == "-flags":
			// cmd/go probes for analyzer flags; the suite has none.
			fmt.Println("[]")
			return
		case a == "-doc", a == "--doc", a == "-help", a == "--help", a == "-h":
			printDoc()
			return
		case a == "-json", a == "--json":
			jsonOut = true
		default:
			patterns = append(patterns, a)
		}
	}
	if len(patterns) == 1 && strings.HasSuffix(patterns[0], ".cfg") {
		os.Exit(driver.VetTool(os.Stderr, patterns[0]))
	}
	// JSON goes to stdout (it is the product); human-readable diagnostics
	// stay on stderr like go vet.
	if jsonOut {
		os.Exit(driver.Standalone(os.Stdout, ".", patterns, true))
	}
	os.Exit(driver.Standalone(os.Stderr, ".", patterns, false))
}

// printVersion answers cmd/go's -V=full probe. The output doubles as the
// tool's build ID for go vet's action cache, so it must change whenever
// the binary does: hash the executable itself.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%x\n", filepath.Base(os.Args[0]), h.Sum(nil))
}

func printDoc() {
	fmt.Println("stringscheck enforces simulator determinism, protocol, and hot-path invariants.")
	fmt.Println()
	for _, a := range analysis.All() {
		fmt.Printf("%-10s %s\n", a.Name, a.Doc)
	}
	fmt.Println()
	fmt.Println("usage: stringscheck [-json] [packages]   |   go vet -vettool=$(which stringscheck) [packages]")
	fmt.Println("suppress: //lint:allow <analyzer>[,<analyzer>] -- <reason>")
}
