// Command stringscheck enforces the simulator's determinism and protocol
// invariants (DESIGN.md "Determinism invariants") with five analyzers:
//
//	simclock  — no wall-clock time in sim-driven packages
//	detrand   — no process-global math/rand; thread a seeded *rand.Rand
//	maporder  — no map-iteration order leaking into simulator state
//	rawgo     — no raw goroutines outside the kernel's baton chain
//	errflow   — no silently discarded errors on rpcproto/remoting paths
//
// It runs two ways:
//
//	stringscheck ./...                     # standalone, like a linter
//	go vet -vettool=$(which stringscheck) ./...   # as a vet unit checker
//
// In vettool mode cmd/go invokes the binary once per package with a
// vet.cfg file (plus -V=full and -flags probes, answered below).
// Suppress a finding with: //lint:allow <analyzer> -- <reason>
package main

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/driver"
)

func main() {
	args := os.Args[1:]
	for _, a := range args {
		switch {
		case strings.HasPrefix(a, "-V"):
			printVersion()
			return
		case a == "-flags":
			// cmd/go probes for analyzer flags; the suite has none.
			fmt.Println("[]")
			return
		case a == "-doc", a == "--doc", a == "-help", a == "--help", a == "-h":
			printDoc()
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(driver.VetTool(os.Stderr, args[0]))
	}
	os.Exit(driver.Standalone(os.Stderr, ".", args))
}

// printVersion answers cmd/go's -V=full probe. The output doubles as the
// tool's build ID for go vet's action cache, so it must change whenever
// the binary does: hash the executable itself.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%x\n", filepath.Base(os.Args[0]), h.Sum(nil))
}

func printDoc() {
	fmt.Println("stringscheck enforces simulator determinism and protocol invariants.")
	fmt.Println()
	for _, a := range analysis.All() {
		fmt.Printf("%-10s %s\n", a.Name, a.Doc)
	}
	fmt.Println()
	fmt.Println("usage: stringscheck [packages]   |   go vet -vettool=$(which stringscheck) [packages]")
	fmt.Println("suppress: //lint:allow <analyzer>[,<analyzer>] -- <reason>")
}
