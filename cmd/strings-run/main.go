// strings-run executes one configurable scenario: a runtime mode, a
// balancing policy, a device-level policy, and a set of request streams on
// a one- or two-node GPU server.
//
// Usage:
//
//	strings-run [-mode cuda|rain|strings] [-balance GRR|GMin|GWtMin|RTF|GUF|DTF|MBF]
//	            [-dev none|TFS|LAS|PS] [-streams MC:10,DC:5] [-nodes 1|2]
//	            [-lambda F] [-seed S]
//
// The -streams flag lists kind:count pairs; each stream becomes its own
// tenant, arriving at alternating nodes when -nodes=2.
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"repro/stringsched"
)

var kinds = map[string]stringsched.Kind{
	"DC": stringsched.DXTC, "SC": stringsched.Scan, "BO": stringsched.BinomialOptions,
	"MM": stringsched.MatrixMultiply, "HI": stringsched.Histogram, "EV": stringsched.Eigenvalues,
	"BS": stringsched.BlackScholes, "MC": stringsched.MonteCarlo,
	"GA": stringsched.Gaussian, "SN": stringsched.SortingNetworks,
}

func main() {
	mode := flag.String("mode", "strings", "runtime: cuda, rain or strings")
	balance := flag.String("balance", "GMin", "workload balancing policy")
	dev := flag.String("dev", "none", "device-level policy: none, TFS, LAS, PS")
	streamsArg := flag.String("streams", "MC:8,DC:4", "comma-separated kind:count streams")
	nodes := flag.Int("nodes", 1, "number of nodes (1 = 2 GPUs, 2 = 4-GPU supernode)")
	lambda := flag.Float64("lambda", 0.6, "mean inter-arrival as a fraction of solo runtime")
	styleArg := flag.String("style", "sync", "application style: sync, pipelined, multithread")
	memGuard := flag.Bool("memguard", false, "enable memory-pressure admission control (Strings)")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	var style stringsched.Style
	switch strings.ToLower(*styleArg) {
	case "sync":
		style = stringsched.StyleSync
	case "pipelined":
		style = stringsched.StylePipelined
	case "multithread":
		style = stringsched.StyleMultiThread
	default:
		log.Fatalf("unknown style %q", *styleArg)
	}

	cfg := stringsched.Config{
		Seed:        *seed,
		Balance:     *balance,
		DevPolicy:   *dev,
		MemoryGuard: *memGuard,
	}
	switch strings.ToLower(*mode) {
	case "cuda":
		cfg.Mode = stringsched.ModeCUDA
	case "rain":
		cfg.Mode = stringsched.ModeRain
	case "strings":
		cfg.Mode = stringsched.ModeStrings
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
	cfg.Nodes = []stringsched.NodeConfig{
		{Devices: []stringsched.DeviceSpec{stringsched.Quadro2000, stringsched.TeslaC2050}},
	}
	if *nodes == 2 {
		cfg.Nodes = append(cfg.Nodes, stringsched.NodeConfig{
			Devices: []stringsched.DeviceSpec{stringsched.Quadro4000, stringsched.TeslaC2070},
		})
	}

	var streams []stringsched.StreamSpec
	for i, part := range strings.Split(*streamsArg, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), ":", 2)
		if len(kv) != 2 {
			log.Fatalf("bad stream %q (want KIND:COUNT)", part)
		}
		kind, ok := kinds[strings.ToUpper(kv[0])]
		if !ok {
			log.Fatalf("unknown benchmark %q", kv[0])
		}
		count, err := strconv.Atoi(kv[1])
		if err != nil || count <= 0 {
			log.Fatalf("bad count in %q", part)
		}
		node := 0
		if *nodes == 2 {
			node = i % 2
		}
		streams = append(streams, stringsched.StreamSpec{
			Kind: kind, Count: count, LambdaFactor: *lambda,
			Node: node, Tenant: int64(i + 1), Weight: 1, Style: style,
		})
	}

	cluster, err := stringsched.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	r, err := cluster.Run(streams)
	if err != nil {
		log.Fatal(err)
	}
	if len(r.Errors) > 0 {
		log.Fatalf("application errors: %v", r.Errors)
	}

	fmt.Printf("mode=%s balance=%s dev=%s nodes=%d seed=%d\n",
		cfg.Mode, cfg.Balance, cfg.DevPolicy, len(cfg.Nodes), cfg.Seed)
	fmt.Printf("requests: %d launched, %d finished, horizon %v\n\n",
		r.Launched, r.Finished, r.EndTime)
	for _, k := range r.Kinds() {
		cs := r.Completions[k]
		fmt.Printf("  %-3v %3d requests, avg %v, p50 %v, p95 %v\n",
			k, len(cs), r.AvgCompletion(k),
			r.PercentileCompletion(k, 0.5), r.PercentileCompletion(k, 0.95))
	}
	fmt.Println()
	for gid, d := range cluster.Devices() {
		st := d.Stats()
		fmt.Printf("  GID %d %-12s kernels %4d, copies %4d, switches %3d, compute busy %v\n",
			gid, d.Spec().Name, st.KernelsDone, st.CopiesDone, st.Switches, st.ComputeBusy)
	}
}
