// strings-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	strings-bench [-exp all|table1|fig1|fig2|fig9|fig10|fig11|fig12|fig13|fig14|fig15|ablations|faults]
//	              [-requests N] [-lambda F] [-seed S] [-pairs N] [-width W]
//	              [-cpuprofile out.pprof] [-memprofile out.pprof]
//	              [-bench-json BENCH_simcore.json]
//
// Each experiment prints the same rows/series as the corresponding table or
// figure in "Scheduling Multi-tenant Cloud Workloads on Accelerator-based
// Systems" (SC'14). Absolute numbers come from the simulated testbed; the
// shapes — which policy wins, by roughly what factor — are the
// reproduction targets.
//
// -bench-json switches the binary into benchmark mode: instead of the
// figure sweeps it runs the standard simulator-throughput scenario (a busy
// two-GPU Strings node, the same one BenchmarkSimulatorThroughput times),
// and writes events/sec, ns/event and allocs/event to the given JSON file.
// -cpuprofile and -memprofile capture pprof profiles of whatever ran.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/stringsched"
)

// benchReport is the BENCH_simcore.json schema: raw totals plus the derived
// per-event rates that track kernel fast-path regressions.
type benchReport struct {
	Scenario       string  `json:"scenario"`
	Iterations     int     `json:"iterations"`
	WallSeconds    float64 `json:"wall_seconds"`
	VirtualSeconds float64 `json:"virtual_seconds"`
	Events         uint64  `json:"events"`
	EventsPerSec   float64 `json:"events_per_sec"`
	NsPerEvent     float64 `json:"ns_per_event"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	BytesPerEvent  float64 `json:"bytes_per_event"`
}

// runBenchJSON runs the simulator-throughput scenario repeatedly and writes
// the aggregate rates to path.
func runBenchJSON(path string, seed int64, iters int) error {
	if iters < 1 {
		return fmt.Errorf("-bench-iters must be at least 1 (got %d)", iters)
	}
	var ms0, ms1 runtime.MemStats
	var events uint64
	var virtual float64
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now() //lint:allow simclock -- bench harness: wall time measures the simulator itself, it never reaches simulated state
	for i := 0; i < iters; i++ {
		c, err := stringsched.NewCluster(stringsched.Config{
			Seed: seed + int64(i),
			Nodes: []stringsched.NodeConfig{{Devices: []stringsched.DeviceSpec{
				stringsched.Quadro2000, stringsched.TeslaC2050,
			}}},
			Mode:    stringsched.ModeStrings,
			Balance: "GMin",
		})
		if err != nil {
			return err
		}
		r, err := c.Run([]stringsched.StreamSpec{{
			Kind: stringsched.MonteCarlo, Count: 6, LambdaFactor: 0.5,
			Node: 0, Tenant: 1, Weight: 1,
		}})
		if err != nil {
			return err
		}
		if len(r.Errors) > 0 {
			return fmt.Errorf("simulation errors: %v", r.Errors)
		}
		events += c.K.Dispatched()
		virtual += r.EndTime.Seconds()
	}
	wall := time.Since(start) //lint:allow simclock -- bench harness: wall time measures the simulator itself, it never reaches simulated state
	runtime.ReadMemStats(&ms1)
	rep := benchReport{
		Scenario:       "two-GPU Strings node, GMin, 6 MonteCarlo requests",
		Iterations:     iters,
		WallSeconds:    wall.Seconds(),
		VirtualSeconds: virtual,
		Events:         events,
		EventsPerSec:   float64(events) / wall.Seconds(),
		NsPerEvent:     float64(wall.Nanoseconds()) / float64(events),
		AllocsPerEvent: float64(ms1.Mallocs-ms0.Mallocs) / float64(events),
		BytesPerEvent:  float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(events),
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("%s: %.0f events/sec, %.0f ns/event, %.2f allocs/event (%d events, %.2fs wall)\n",
		path, rep.EventsPerSec, rep.NsPerEvent, rep.AllocsPerEvent, rep.Events, rep.WallSeconds)
	return nil
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, table1, fig1, fig2, fig9..fig15, headline, ablations, faults; faults is opt-in and not part of all)")
	requests := flag.Int("requests", 12, "requests per short-job stream")
	lambda := flag.Float64("lambda", 0.6, "mean inter-arrival as a fraction of solo runtime")
	seed := flag.Int64("seed", 1, "simulation seed")
	pairs := flag.Int("pairs", 24, "number of workload pairs (prefix of A..X)")
	width := flag.Int("width", 72, "width of utilization strips")
	workers := flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
	seeds := flag.Int("seeds", 1, "replications per scenario (pooled)")
	csv := flag.Bool("csv", false, "emit tables as CSV instead of aligned text")
	htmlOut := flag.String("html", "", "also write an HTML report with SVG charts to this path")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memprofile := flag.String("memprofile", "", "write a heap profile to this path on exit")
	benchJSON := flag.String("bench-json", "", "benchmark mode: write simulator throughput metrics to this JSON file instead of running experiments")
	benchIters := flag.Int("bench-iters", 20, "iterations of the throughput scenario in -bench-json mode")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	writeMemProfile := func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
	}

	if *benchJSON != "" {
		if err := runBenchJSON(*benchJSON, *seed, *benchIters); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		writeMemProfile()
		return
	}

	opt := stringsched.SuiteOptions{
		Seed:         *seed,
		Requests:     *requests,
		LambdaFactor: *lambda,
		Workers:      *workers,
		Seeds:        *seeds,
	}
	if *pairs < 24 {
		opt.Pairs = stringsched.Pairs()[:*pairs]
	}
	suite := stringsched.NewSuite(opt)

	var page *stringsched.ReportPage
	if *htmlOut != "" {
		page = stringsched.NewReportPage("Strings (SC'14) reproduction — measured figures")
	}
	render := func(t *stringsched.Table) {
		if *csv {
			fmt.Println(t.CSV())
		} else {
			fmt.Println(t.Format())
		}
		if page != nil {
			page.AddTable(t)
		}
	}
	runners := []struct {
		name string
		// extra experiments run only when named explicitly, never under
		// -exp all (they change cluster configuration — fault injection —
		// rather than reproduce a paper figure).
		extra bool
		fn    func()
	}{
		{name: "table1", fn: func() { render(suite.TableI()) }},
		{name: "fig1", fn: func() { render(suite.Fig1()) }},
		{name: "fig2", fn: func() {
			out := suite.Fig2().Format(*width)
			fmt.Println(out)
			if page != nil {
				page.AddPre("Fig 2: sequential vs concurrent Monte Carlo", out)
			}
		}},
		{name: "fig9", fn: func() { render(suite.Fig9()) }},
		{name: "fig10", fn: func() { render(suite.Fig10()) }},
		{name: "fig11", fn: func() { render(suite.Fig11()) }},
		{name: "fig12", fn: func() { render(suite.Fig12()) }},
		{name: "fig13", fn: func() { render(suite.Fig13()) }},
		{name: "fig14", fn: func() { render(suite.Fig14()) }},
		{name: "fig15", fn: func() { render(suite.Fig15()) }},
		{name: "headline", fn: func() { render(suite.Headline()) }},
		{name: "ablations", fn: func() {
			render(suite.AblationContextSwitch())
			render(suite.AblationCopyEngines())
			render(suite.AblationRemoteBandwidth())
			render(suite.AblationLASDecay())
			render(suite.AblationAccountingLag())
			render(suite.AblationArbiter())
			render(suite.AblationAppStyle())
		}},
		{name: "faults", extra: true, fn: func() { render(suite.Faults()) }},
	}

	want := strings.ToLower(*exp)
	matched := false
	start := time.Now() //lint:allow simclock -- bench harness: wall time measures the simulator itself, it never reaches simulated state
	for _, r := range runners {
		if (want == "all" && !r.extra) || want == r.name {
			matched = true
			r.fn()
		}
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
	if page != nil {
		if err := page.WriteFile(*htmlOut); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *htmlOut, err)
			os.Exit(1)
		}
		fmt.Printf("HTML report written to %s\n", *htmlOut)
	}
	fmt.Printf("(%d simulations, %.1fs wall)\n", suite.Runs, time.Since(start).Seconds()) //lint:allow simclock -- bench harness: wall time measures the simulator itself, it never reaches simulated state
	writeMemProfile()
}
