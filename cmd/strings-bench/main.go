// strings-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	strings-bench [-exp all|table1|fig1|fig2|fig9|fig10|fig11|fig12|fig13|fig14|fig15|headline|frag|ablations|faults|mega]
//	              [-requests N] [-lambda F] [-seed S] [-pairs N] [-width W]
//	              [-parallel N] [-seeds N] [-mega-requests N] [-shards N]
//	              [-cpuprofile out.pprof] [-memprofile out.pprof]
//	              [-bench-json BENCH_simcore.json] [-bench-sweep BENCH_sweep.json]
//	              [-trace out.json]
//
// Each experiment prints the same rows/series as the corresponding table or
// figure in "Scheduling Multi-tenant Cloud Workloads on Accelerator-based
// Systems" (SC'14). Absolute numbers come from the simulated testbed; the
// shapes — which policy wins, by roughly what factor — are the
// reproduction targets. The faults experiment is opt-in: it is excluded
// from -exp all and runs only when named explicitly. The frag experiment
// is the slice-placement study: MIG-partitioned devices under mixed
// 1g..7g tenants, comparing the fragmentation-gradient policy against
// GMin and GRR on stranded capacity and tail latency.
//
// -parallel bounds how many experiment cells run concurrently (0 =
// GOMAXPROCS, 1 = sequential). Output is byte-identical at every setting:
// cells are collected in grid order, not completion order.
//
// -bench-json switches the binary into benchmark mode: instead of the
// figure sweeps it runs the standard simulator-throughput scenario (a busy
// two-GPU Strings node, the same one BenchmarkSimulatorThroughput times),
// and writes events/sec, ns/event and allocs/event to the given JSON file.
// -exp mega is the macro-benchmark: one -mega-requests-long stream of
// light-profile requests through a two-GPU Strings node, reporting events/sec,
// ns/event, allocs/event and the fast-forward skip ratio; its mega_* keys are
// merged into the bench JSON without disturbing the standard scenario's keys.
// With -shards N the mega run instead uses the four-node sharded fleet: the
// same traffic split across four shard kernels advancing concurrently under
// the conservative window protocol, timed at 1 and N barrier workers, with
// bit-identical simulated results verified between the passes and the
// parallel speedup recorded (mega_sharded_*/mega_shards keys).
// -bench-sweep times the figure grid sequentially and at -parallel workers,
// verifies the tables are identical, and writes the speedup to the given
// JSON file. -trace runs the same throughput scenario with the span recorder
// attached and writes the trace (Chrome trace-event JSON, or JSONL when the
// path ends in .jsonl); combined with -bench-json it also reports the
// recorder's per-event overhead. -cpuprofile and -memprofile capture pprof
// profiles of whatever ran.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/parallel"
	"repro/stringsched"
)

// benchReport is the BENCH_simcore.json schema: raw totals plus the derived
// per-event rates that track kernel fast-path regressions. The traced_*
// fields appear only when -trace also ran the scenario with the span
// recorder enabled; they track the observability layer's overhead.
type benchReport struct {
	Scenario             string  `json:"scenario"`
	Iterations           int     `json:"iterations"`
	WallSeconds          float64 `json:"wall_seconds"`
	VirtualSeconds       float64 `json:"virtual_seconds"`
	Events               uint64  `json:"events"`
	EventsPerSec         float64 `json:"events_per_sec"`
	NsPerEvent           float64 `json:"ns_per_event"`
	AllocsPerEvent       float64 `json:"allocs_per_event"`
	BytesPerEvent        float64 `json:"bytes_per_event"`
	TracedNsPerEvent     float64 `json:"traced_ns_per_event,omitempty"`
	TracedAllocsPerEvent float64 `json:"traced_allocs_per_event,omitempty"`
	TraceOverheadPct     float64 `json:"trace_overhead_pct,omitempty"`
	TraceSpans           int     `json:"trace_spans,omitempty"`
}

// throughputScenario runs one instance of the standard simulator-throughput
// scenario (the busy two-GPU Strings node BenchmarkSimulatorThroughput
// times), optionally with a trace recorder attached, and returns the kernel
// event count and virtual seconds simulated.
func throughputScenario(seed int64, rec *stringsched.TraceRecorder) (uint64, float64, error) {
	c, err := stringsched.NewCluster(stringsched.Config{
		Seed: seed,
		Nodes: []stringsched.NodeConfig{{Devices: []stringsched.DeviceSpec{
			stringsched.Quadro2000, stringsched.TeslaC2050,
		}}},
		Mode:     stringsched.ModeStrings,
		Balance:  "GMin",
		Recorder: rec,
	})
	if err != nil {
		return 0, 0, err
	}
	r, err := c.Run([]stringsched.StreamSpec{{
		Kind: stringsched.MonteCarlo, Count: 6, LambdaFactor: 0.5,
		Node: 0, Tenant: 1, Weight: 1,
	}})
	if err != nil {
		return 0, 0, err
	}
	if len(r.Errors) > 0 {
		return 0, 0, fmt.Errorf("simulation errors: %v", r.Errors)
	}
	return c.K.Dispatched(), r.EndTime.Seconds(), nil
}

// writeTrace exports a trace set to path; the extension picks the format
// (.jsonl for compact JSONL, anything else for Chrome trace-event JSON).
func writeTrace(path string, set *stringsched.TraceSet) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".jsonl") {
		err = set.WriteJSONL(f)
	} else {
		err = set.WriteChrome(f)
	}
	if err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runBenchJSON runs the simulator-throughput scenario repeatedly and writes
// the aggregate rates to path. When tracePath is non-empty it runs the
// scenario a second time with the span recorder enabled, reports the traced
// rates alongside the baseline, and writes the final iteration's span
// stream to tracePath.
func runBenchJSON(out io.Writer, path string, seed int64, iters int, tracePath string) error {
	if iters < 1 {
		return fmt.Errorf("-bench-iters must be at least 1 (got %d)", iters)
	}
	measure := func(traced bool) (rate struct {
		events  uint64
		virtual float64
		wallSec float64
		wallNs  float64
		allocs  uint64
		bytes   uint64
	}, set *stringsched.TraceSet, err error) {
		// One recorder serves every traced iteration (reset in between), so
		// the traced pass measures recording cost, not buffer re-growth.
		var rec *stringsched.TraceRecorder
		if traced {
			rec = stringsched.NewTraceRecorder()
		}
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		sw := parallel.StartStopwatch()
		for i := 0; i < iters; i++ {
			if traced && i > 0 {
				rec.Reset()
			}
			ev, vs, err := throughputScenario(seed+int64(i), rec)
			if err != nil {
				return rate, nil, err
			}
			rate.events += ev
			rate.virtual += vs
			if traced && i == iters-1 {
				set = rec.Snapshot()
			}
		}
		rate.wallSec, rate.wallNs = sw.Seconds(), float64(sw.Nanoseconds())
		runtime.ReadMemStats(&ms1)
		rate.allocs = ms1.Mallocs - ms0.Mallocs
		rate.bytes = ms1.TotalAlloc - ms0.TotalAlloc
		return rate, set, nil
	}
	base, _, err := measure(false)
	if err != nil {
		return err
	}
	rep := benchReport{
		Scenario:       "two-GPU Strings node, GMin, 6 MonteCarlo requests",
		Iterations:     iters,
		WallSeconds:    base.wallSec,
		VirtualSeconds: base.virtual,
		Events:         base.events,
		EventsPerSec:   float64(base.events) / base.wallSec,
		NsPerEvent:     base.wallNs / float64(base.events),
		AllocsPerEvent: float64(base.allocs) / float64(base.events),
		BytesPerEvent:  float64(base.bytes) / float64(base.events),
	}
	if tracePath != "" {
		traced, set, err := measure(true)
		if err != nil {
			return err
		}
		rep.TracedNsPerEvent = traced.wallNs / float64(traced.events)
		rep.TracedAllocsPerEvent = float64(traced.allocs) / float64(traced.events)
		rep.TraceOverheadPct = 100 * (rep.TracedNsPerEvent - rep.NsPerEvent) / rep.NsPerEvent
		rep.TraceSpans = len(set.Spans)
		if err := writeTrace(tracePath, set); err != nil {
			return err
		}
		fmt.Fprintf(out, "%s: %d spans, %d events, %d decisions (traced overhead %.1f%%)\n",
			tracePath, len(set.Spans), len(set.Events), len(set.Decisions), rep.TraceOverheadPct)
	}
	if err := mergeBenchJSON(path, rep); err != nil {
		return err
	}
	fmt.Fprintf(out, "%s: %.0f events/sec, %.0f ns/event, %.2f allocs/event (%d events, %.2fs wall)\n",
		path, rep.EventsPerSec, rep.NsPerEvent, rep.AllocsPerEvent, rep.Events, rep.WallSeconds)
	return nil
}

// mergeBenchJSON overlays rep's fields onto whatever JSON object already
// lives at path and writes the union back. The bench file accumulates keys
// from independent passes (the standard throughput pass, the traced pass, the
// mega macro-run); a pass must refresh its own keys without dropping the
// others'. MarshalIndent sorts object keys, so the output is deterministic
// regardless of merge order.
func mergeBenchJSON(path string, rep any) error {
	merged := map[string]any{}
	if old, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(old, &merged); err != nil {
			return fmt.Errorf("%s: existing contents are not a JSON object (refusing to clobber): %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	var fresh map[string]any
	if err := json.Unmarshal(raw, &fresh); err != nil {
		return err
	}
	for k, v := range fresh {
		merged[k] = v
	}
	out, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(path, append(out, '\n'))
}

// writeFileAtomic writes data to path via a temp file in the same directory
// and a rename, so a crash mid-write (or a concurrent reader in CI) never
// observes a truncated bench file. The bench JSON is read-modify-written by
// several independent passes; the rename makes each update all-or-nothing.
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Chmod(name, 0o644); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}

// megaReport is the mega macro-run's slice of the BENCH_simcore.json schema.
// All keys are mega_-prefixed so mergeBenchJSON can refresh them without
// touching the standard scenario's numbers (and vice versa).
type megaReport struct {
	Scenario       string  `json:"mega_scenario"`
	Requests       int     `json:"mega_requests"`
	Finished       int     `json:"mega_finished"`
	Events         uint64  `json:"mega_events"`
	WallSeconds    float64 `json:"mega_wall_seconds"`
	VirtualSeconds float64 `json:"mega_virtual_seconds"`
	EventsPerSec   float64 `json:"mega_events_per_sec"`
	NsPerEvent     float64 `json:"mega_ns_per_event"`
	AllocsPerEvent float64 `json:"mega_allocs_per_event"`
	FFJumps        uint64  `json:"mega_ff_jumps"`
	FFSkipRatio    float64 `json:"mega_ff_skip_ratio"`
}

// runBenchMega runs the mega macro-scenario (stringsched.RunMega: a single
// stream of `requests` Gaussian-elimination requests through a two-GPU
// Strings node) once, and merges the mega_* metrics into the bench JSON at
// path.
func runBenchMega(out io.Writer, path string, seed int64, requests int) error {
	if requests < 1 {
		return fmt.Errorf("-mega-requests must be at least 1 (got %d)", requests)
	}
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	sw := parallel.StartStopwatch()
	res, err := stringsched.RunMega(seed, requests)
	if err != nil {
		return err
	}
	wallSec, wallNs := sw.Seconds(), float64(sw.Nanoseconds())
	runtime.ReadMemStats(&ms1)
	allocs := ms1.Mallocs - ms0.Mallocs
	rep := megaReport{
		Scenario:       fmt.Sprintf("two-GPU Strings node, GMin, %d Gaussian requests", requests),
		Requests:       requests,
		Finished:       res.Finished,
		Events:         res.Events,
		WallSeconds:    wallSec,
		VirtualSeconds: res.EndTime.Seconds(),
		EventsPerSec:   float64(res.Events) / wallSec,
		NsPerEvent:     wallNs / float64(res.Events),
		AllocsPerEvent: float64(allocs) / float64(res.Events),
		FFJumps:        res.FFJumps,
		FFSkipRatio:    res.SkipRatio(),
	}
	if err := mergeBenchJSON(path, rep); err != nil {
		return err
	}
	fmt.Fprintf(out, "%s: mega %d requests, %d events, %.0f events/sec, %.0f ns/event, %.2f allocs/event, %d ff jumps (%.1f%% of timeline skipped), %.2fs wall\n",
		path, rep.Requests, rep.Events, rep.EventsPerSec, rep.NsPerEvent, rep.AllocsPerEvent,
		rep.FFJumps, 100*rep.FFSkipRatio, rep.WallSeconds)
	return nil
}

// megaShardReport is the sharded mega macro-run's slice of the bench JSON.
// The mega_sharded_* keys are the simulated outcome — bit-identical at any
// -shards setting, which is what CI diffs between its -shards 1 and -shards 4
// variants — while the remaining keys (worker count, wall clocks, speedup)
// describe machine-dependent timing. Cores/gomaxprocs make the speedup honest
// (same convention as BENCH_sweep.json): a 1-core container cannot show one,
// and the file says so.
type megaShardReport struct {
	Scenario       string  `json:"mega_sharded_scenario"`
	Requests       int     `json:"mega_sharded_requests"`
	Finished       int     `json:"mega_sharded_finished"`
	Events         uint64  `json:"mega_sharded_events"`
	VirtualSeconds float64 `json:"mega_sharded_virtual_seconds"`
	FFJumps        uint64  `json:"mega_sharded_ff_jumps"`
	FFSkipRatio    float64 `json:"mega_sharded_ff_skip_ratio"`
	Windows        uint64  `json:"mega_sharded_windows"`
	SoloRuns       uint64  `json:"mega_sharded_solo_runs"`
	Messages       uint64  `json:"mega_sharded_messages"`
	LookaheadUS    int64   `json:"mega_sharded_lookahead_us"`
	Identical      bool    `json:"mega_sharded_identical"`

	Shards       int     `json:"mega_shards"`
	Cores        int     `json:"mega_cores"`
	Gomaxprocs   int     `json:"mega_gomaxprocs"`
	SeqSeconds   float64 `json:"mega_seq_seconds"`
	ParSeconds   float64 `json:"mega_par_seconds"`
	Speedup      float64 `json:"mega_parallel_speedup"`
	EventsPerSec float64 `json:"mega_par_events_per_sec"`
	NsPerEvent   float64 `json:"mega_par_ns_per_event"`
}

// runBenchMegaSharded runs the sharded mega macro-scenario
// (stringsched.RunMegaSharded: the mega traffic split across a four-node,
// four-shard fleet) twice — once with one barrier worker, once with shards —
// verifies the two passes produced bit-identical simulated results, and
// merges the comparison into the bench JSON at path. A mismatch is a hard
// error after the file is written: the speedup is worthless if the answers
// changed.
func runBenchMegaSharded(out io.Writer, path string, seed int64, requests, shards int) error {
	if requests < 1 {
		return fmt.Errorf("-mega-requests must be at least 1 (got %d)", requests)
	}
	if shards < 1 {
		return fmt.Errorf("-shards must be at least 1 in sharded mega mode (got %d)", shards)
	}
	pass := func(workers int) (stringsched.MegaResult, stringsched.ShardStats, float64, error) {
		runtime.GC()
		sw := parallel.StartStopwatch()
		res, stats, err := stringsched.RunMegaSharded(seed, requests, workers)
		return res, stats, sw.Seconds(), err
	}
	seqRes, seqStats, seqSec, err := pass(1)
	if err != nil {
		return err
	}
	parRes, parStats, parSec, err := pass(shards)
	if err != nil {
		return err
	}
	rep := megaShardReport{
		Scenario:       fmt.Sprintf("four-node sharded Strings fleet, GMin, %d Gaussian requests", requests),
		Requests:       requests,
		Finished:       parRes.Finished,
		Events:         parRes.Events,
		VirtualSeconds: parRes.EndTime.Seconds(),
		FFJumps:        parRes.FFJumps,
		FFSkipRatio:    parRes.SkipRatio(),
		Windows:        parStats.Windows,
		SoloRuns:       parStats.SoloRuns,
		Messages:       parStats.Messages,
		LookaheadUS:    int64(parStats.Lookahead),
		Identical:      reflect.DeepEqual(parRes, seqRes) && reflect.DeepEqual(parStats, seqStats),
		Shards:         shards,
		Cores:          runtime.NumCPU(),
		Gomaxprocs:     runtime.GOMAXPROCS(0),
		SeqSeconds:     seqSec,
		ParSeconds:     parSec,
		Speedup:        seqSec / parSec,
		EventsPerSec:   float64(parRes.Events) / parSec,
		NsPerEvent:     parSec * 1e9 / float64(parRes.Events),
	}
	if err := mergeBenchJSON(path, rep); err != nil {
		return err
	}
	fmt.Fprintf(out, "%s: sharded mega %d requests, %d events, %d windows, %d messages; %.2fs at 1 worker, %.2fs at %d (%.2fx, %d cores, identical=%v)\n",
		path, rep.Requests, rep.Events, rep.Windows, rep.Messages,
		rep.SeqSeconds, rep.ParSeconds, shards, rep.Speedup, rep.Cores, rep.Identical)
	if !rep.Identical {
		return fmt.Errorf("sharded mega run diverged between 1 and %d workers — determinism bug", shards)
	}
	return nil
}

// runTraceOnly runs one traced instance of the throughput scenario and
// writes its span stream to path — the quick way to get a chrome://tracing
// file without benchmark timing.
func runTraceOnly(out io.Writer, path string, seed int64) error {
	rec := stringsched.NewTraceRecorder()
	if _, _, err := throughputScenario(seed, rec); err != nil {
		return err
	}
	set := rec.Snapshot()
	if err := writeTrace(path, set); err != nil {
		return err
	}
	fmt.Fprintf(out, "%s: %d spans, %d events, %d decisions\n",
		path, len(set.Spans), len(set.Events), len(set.Decisions))
	return nil
}

// sweepReport is the BENCH_sweep.json schema: the wall-clock of the same
// experiment grid run sequentially and in parallel, plus the determinism
// verdict. Cores/gomaxprocs make the numbers honest — a 1-core container
// cannot show a speedup, and the file says so.
type sweepReport struct {
	Scenario        string  `json:"scenario"`
	Cores           int     `json:"cores"`
	Gomaxprocs      int     `json:"gomaxprocs"`
	ParallelWorkers int     `json:"parallel_workers"`
	SeqSeconds      float64 `json:"sequential_seconds"`
	ParSeconds      float64 `json:"parallel_seconds"`
	Speedup         float64 `json:"speedup"`
	Identical       bool    `json:"identical_metrics"`
	Simulations     int     `json:"simulations"`
}

// runBenchSweep times the figure grid (Figures 9, 10 and 12 — the bulk of
// -exp all) at one worker and at workers workers, checks the two passes
// produced deeply equal tables, and writes the comparison to path. A
// metrics mismatch is a hard error: the speedup is worthless if the answers
// changed.
func runBenchSweep(out io.Writer, path string, seed int64, requests, pairs, workers int) error {
	if workers <= 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	grid := func(w int) ([]*stringsched.Table, float64, int) {
		opt := stringsched.SuiteOptions{Seed: seed, Requests: requests, Workers: w}
		if pairs < 24 {
			opt.Pairs = stringsched.Pairs()[:pairs]
		}
		s := stringsched.NewSuite(opt)
		sw := parallel.StartStopwatch()
		tabs := []*stringsched.Table{s.Fig9(), s.Fig10(), s.Fig12()}
		return tabs, sw.Seconds(), s.Runs
	}
	seqTabs, seqSec, runs := grid(1)
	parTabs, parSec, _ := grid(workers)
	rep := sweepReport{
		Scenario:        fmt.Sprintf("fig9+fig10+fig12, %d requests, %d pairs", requests, pairs),
		Cores:           runtime.NumCPU(),
		Gomaxprocs:      runtime.GOMAXPROCS(0),
		ParallelWorkers: workers,
		SeqSeconds:      seqSec,
		ParSeconds:      parSec,
		Speedup:         seqSec / parSec,
		Identical:       reflect.DeepEqual(seqTabs, parTabs),
		Simulations:     runs,
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "%s: %.2fs sequential, %.2fs at %d workers (%.2fx, %d cores, identical=%v)\n",
		path, rep.SeqSeconds, rep.ParSeconds, workers, rep.Speedup, rep.Cores, rep.Identical)
	if !rep.Identical {
		return fmt.Errorf("parallel sweep diverged from sequential sweep — determinism bug")
	}
	return nil
}

// clusterReport is the cluster-tier macro-run's slice of BENCH_simcore.json.
// The cluster_* simulated keys are bit-identical at any -parallel/-shards
// setting — runBenchCluster verifies that by running the scenario at one
// worker and at -parallel workers and demanding deeply equal results —
// while the wall-clock keys describe machine-dependent timing.
type clusterReport struct {
	Scenario       string  `json:"cluster_scenario"`
	Policy         string  `json:"cluster_policy"`
	Supernodes     int     `json:"cluster_supernodes"`
	Born           int     `json:"cluster_born"`
	Placed         int     `json:"cluster_placed"`
	Parked         int     `json:"cluster_parked"`
	Rejected       int     `json:"cluster_rejected"`
	Conflicts      int     `json:"cluster_conflicts"`
	Requests       int     `json:"cluster_requests"`
	Finished       int     `json:"cluster_finished"`
	Events         uint64  `json:"cluster_events"`
	VirtualSeconds float64 `json:"cluster_virtual_seconds"`
	P50Seconds     float64 `json:"cluster_p50_s"`
	P99Seconds     float64 `json:"cluster_p99_s"`
	P999Seconds    float64 `json:"cluster_p999_s"`
	AvgWaitSeconds float64 `json:"cluster_avg_admission_wait_s"`
	MaxWaitSeconds float64 `json:"cluster_max_admission_wait_s"`
	Fairness       float64 `json:"cluster_fairness"`
	MeanUtil       float64 `json:"cluster_util_mean"`
	Identical      bool    `json:"cluster_identical"`

	Cores        int     `json:"cluster_cores"`
	Gomaxprocs   int     `json:"cluster_gomaxprocs"`
	Workers      int     `json:"cluster_workers"`
	SeqSeconds   float64 `json:"cluster_seq_seconds"`
	ParSeconds   float64 `json:"cluster_par_seconds"`
	Speedup      float64 `json:"cluster_parallel_speedup"`
	EventsPerSec float64 `json:"cluster_par_events_per_sec"`
}

// clusterFleet is the bench cluster fleet: three two-node supernodes of
// Quadro 2000 + Tesla C2050 pairs (48 admission slots at the default 4
// slots/device) — the same shape the internal/cluster invariance suite pins.
func clusterFleet() []stringsched.ClusterSupernode {
	sn := stringsched.ClusterSupernode{Nodes: []stringsched.NodeConfig{
		{Devices: []stringsched.DeviceSpec{stringsched.Quadro2000, stringsched.TeslaC2050}},
		{Devices: []stringsched.DeviceSpec{stringsched.Quadro2000, stringsched.TeslaC2050}},
	}}
	return []stringsched.ClusterSupernode{sn, sn, sn}
}

// runBenchCluster runs the cluster-tier macro-scenario for every placement
// policy: open-arrival tenants from spec placed over the three-supernode
// fleet, executed once sequentially and once at `workers` workers with the
// results verified deeply equal, then merged into the bench JSON at path
// (cluster_* keys hold the policy named by primary). A mismatch is a hard
// error after the file is written.
func runBenchCluster(out io.Writer, path, specText, primary string, seed int64, workers, shards int) error {
	spec, err := stringsched.ParseOpenArrivalSpec(specText)
	if err != nil {
		return fmt.Errorf("-cluster-spec: %w", err)
	}
	known := false
	for _, p := range stringsched.ClusterPolicies() {
		known = known || p == primary
	}
	if !known {
		return fmt.Errorf("unknown cluster policy %q (valid: %s)",
			primary, strings.Join(stringsched.ClusterPolicies(), ", "))
	}
	if workers <= 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	var rep clusterReport
	for _, policy := range stringsched.ClusterPolicies() {
		cfg := stringsched.ClusterConfig{
			Seed: seed, Supernodes: clusterFleet(), Policy: policy,
			Arrivals: spec, Shards: shards,
		}
		pass := func(w int) (*stringsched.ClusterResult, float64, error) {
			cfg.Workers = w
			runtime.GC()
			sw := parallel.StartStopwatch()
			r, err := stringsched.RunCluster(cfg)
			return r, sw.Seconds(), err
		}
		seqRes, seqSec, err := pass(1)
		if err != nil {
			return err
		}
		parRes, parSec, err := pass(workers)
		if err != nil {
			return err
		}
		identical := reflect.DeepEqual(seqRes, parRes)
		var util float64
		for _, sn := range parRes.Supernodes {
			util += sn.Utilization
		}
		util /= float64(len(parRes.Supernodes))
		fmt.Fprintf(out, "cluster/%s: born %d placed %d parked %d rejected %d conflicts %d; %d requests, %d events; p50 %v p99 %v p999 %v fairness %.4f; %.2fs at 1 worker, %.2fs at %d (%.2fx, identical=%v)\n",
			policy, parRes.Log.Born, parRes.Log.Placed, parRes.Log.Parked, parRes.Log.Rejected,
			parRes.Log.Conflicts, parRes.Requests, parRes.Events,
			parRes.P50, parRes.P99, parRes.P999, parRes.Fairness,
			seqSec, parSec, workers, seqSec/parSec, identical)
		if !identical {
			return fmt.Errorf("cluster/%s diverged between 1 and %d workers — determinism bug", policy, workers)
		}
		if policy == primary {
			rep = clusterReport{
				Scenario:       fmt.Sprintf("3-supernode fleet, %s placement, %s", primary, spec.String()),
				Policy:         primary,
				Supernodes:     len(parRes.Supernodes),
				Born:           parRes.Log.Born,
				Placed:         parRes.Log.Placed,
				Parked:         parRes.Log.Parked,
				Rejected:       parRes.Log.Rejected,
				Conflicts:      parRes.Log.Conflicts,
				Requests:       parRes.Requests,
				Finished:       parRes.Finished,
				Events:         parRes.Events,
				VirtualSeconds: parRes.EndTime.Seconds(),
				P50Seconds:     parRes.P50.Seconds(),
				P99Seconds:     parRes.P99.Seconds(),
				P999Seconds:    parRes.P999.Seconds(),
				AvgWaitSeconds: parRes.AvgAdmissionWait.Seconds(),
				MaxWaitSeconds: parRes.MaxAdmissionWait.Seconds(),
				Fairness:       parRes.Fairness,
				MeanUtil:       util,
				Identical:      identical,
				Cores:          runtime.NumCPU(),
				Gomaxprocs:     runtime.GOMAXPROCS(0),
				Workers:        workers,
				SeqSeconds:     seqSec,
				ParSeconds:     parSec,
				Speedup:        seqSec / parSec,
				EventsPerSec:   float64(parRes.Events) / parSec,
			}
		}
	}
	if err := mergeBenchJSON(path, rep); err != nil {
		return err
	}
	fmt.Fprintf(out, "%s: cluster_* keys merged (policy %s)\n", path, primary)
	return nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable CLI body: it parses args, validates every flag with an
// exit-1-and-list-the-valid-range failure mode, and dispatches to the
// experiment suites and benchmark modes.
func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("strings-bench", flag.ContinueOnError)
	fs.SetOutput(errOut)
	exp := fs.String("exp", "all", "experiment to run (all, table1, fig1, fig2, fig9..fig15, headline, frag, ablations, faults, mega, cluster; faults, mega and cluster are opt-in and excluded from all)")
	requests := fs.Int("requests", 12, "requests per short-job stream")
	lambda := fs.Float64("lambda", 0.6, "mean inter-arrival as a fraction of solo runtime")
	seed := fs.Int64("seed", 1, "simulation seed")
	pairs := fs.Int("pairs", 24, "number of workload pairs (prefix of A..X)")
	width := fs.Int("width", 72, "width of utilization strips")
	parallelN := fs.Int("parallel", 0, "experiment cells run concurrently (0 = GOMAXPROCS, 1 = sequential; results are identical at any setting)")
	workers := fs.Int("workers", 0, "deprecated alias for -parallel")
	seeds := fs.Int("seeds", 1, "replications per scenario (pooled)")
	csv := fs.Bool("csv", false, "emit tables as CSV instead of aligned text")
	htmlOut := fs.String("html", "", "also write an HTML report with SVG charts to this path")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this path")
	memprofile := fs.String("memprofile", "", "write a heap profile to this path on exit")
	benchJSON := fs.String("bench-json", "", "benchmark mode: write simulator throughput metrics to this JSON file instead of running experiments")
	benchIters := fs.Int("bench-iters", 20, "iterations of the throughput scenario in -bench-json mode")
	traceOut := fs.String("trace", "", "run the throughput scenario with the span recorder and write the trace here (.jsonl for JSONL, otherwise Chrome trace JSON); with -bench-json, also reports traced overhead")
	benchSweep := fs.String("bench-sweep", "", "sweep-benchmark mode: run the figure grid sequentially and in parallel, verify identical tables, and write the speedup to this JSON file")
	megaRequests := fs.Int("mega-requests", 1_000_000, "requests in the -exp mega macro-run")
	shardsN := fs.Int("shards", 0, "with -exp mega: run the four-node sharded mega scenario at 1 and N barrier workers, verify bit-identical simulated results, and record the speedup (0 = classic single-node mega); with -exp cluster: per-supernode shard setting")
	clusterSpec := fs.String("cluster-spec", "poisson:rate=0.5,horizon=2400s,kind=GA,life=80s,lambda=800ms,bigevery=16,bigslots=2",
		"open-arrival spec for the -exp cluster macro-run (process:key=value,...)")
	clusterPolicy := fs.String("cluster-policy", stringsched.ClusterPolicyLeastLoaded,
		"placement policy whose cluster_* keys land in the bench JSON (least-loaded, frag; both always run)")
	if err := fs.Parse(args); err != nil {
		return 1
	}

	// Validate numeric ranges before any work: a bad value must fail
	// fast, non-zero, and say what would have been accepted (the same
	// treatment -exp gives unknown experiment names).
	if *shardsN < 0 {
		fmt.Fprintf(errOut, "invalid -shards %d\nvalid range: 0 (classic single-kernel path) or >= 1 (sharded; N sets the barrier worker count)\n", *shardsN)
		return 1
	}
	if *parallelN < 0 {
		fmt.Fprintf(errOut, "invalid -parallel %d\nvalid range: >= 0 (0 = GOMAXPROCS, 1 = sequential, N = N workers)\n", *parallelN)
		return 1
	}
	if *workers < 0 {
		fmt.Fprintf(errOut, "invalid -workers %d\nvalid range: >= 0 (0 = GOMAXPROCS, 1 = sequential, N = N workers; deprecated alias for -parallel)\n", *workers)
		return 1
	}
	if *parallelN == 0 {
		*parallelN = *workers
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(errOut, "cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(errOut, "cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	writeMemProfile := func() int {
		if *memprofile == "" {
			return 0
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(errOut, "memprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(errOut, "memprofile: %v\n", err)
			return 1
		}
		return 0
	}

	if strings.EqualFold(*exp, "mega") {
		// The mega macro-run is a benchmark, not a figure: it merges its
		// mega_* metrics into the bench JSON (BENCH_simcore.json unless
		// -bench-json points elsewhere) and leaves other keys alone.
		path := *benchJSON
		if path == "" {
			path = "BENCH_simcore.json"
		}
		runFn := func() error { return runBenchMega(out, path, *seed, *megaRequests) }
		if *shardsN >= 1 {
			// -shards switches to the sharded fleet variant: same traffic
			// split across four shard kernels, timed at 1 and N workers.
			runFn = func() error { return runBenchMegaSharded(out, path, *seed, *megaRequests, *shardsN) }
		}
		if err := runFn(); err != nil {
			fmt.Fprintf(errOut, "mega: %v\n", err)
			return 1
		}
		return writeMemProfile()
	}
	if strings.EqualFold(*exp, "cluster") {
		// The cluster macro-run is likewise a benchmark: cluster_* keys
		// into the bench JSON, with the worker-invariance check built in.
		path := *benchJSON
		if path == "" {
			path = "BENCH_simcore.json"
		}
		if err := runBenchCluster(out, path, *clusterSpec, *clusterPolicy, *seed, *parallelN, *shardsN); err != nil {
			fmt.Fprintf(errOut, "cluster: %v\n", err)
			return 1
		}
		return writeMemProfile()
	}
	if *benchJSON != "" {
		if err := runBenchJSON(out, *benchJSON, *seed, *benchIters, *traceOut); err != nil {
			fmt.Fprintf(errOut, "bench: %v\n", err)
			return 1
		}
		return writeMemProfile()
	}
	if *traceOut != "" {
		if err := runTraceOnly(out, *traceOut, *seed); err != nil {
			fmt.Fprintf(errOut, "trace: %v\n", err)
			return 1
		}
		return writeMemProfile()
	}
	if *benchSweep != "" {
		if err := runBenchSweep(out, *benchSweep, *seed, *requests, *pairs, *parallelN); err != nil {
			fmt.Fprintf(errOut, "bench-sweep: %v\n", err)
			return 1
		}
		return writeMemProfile()
	}

	opt := stringsched.SuiteOptions{
		Seed:         *seed,
		Requests:     *requests,
		LambdaFactor: *lambda,
		Workers:      *parallelN,
		Seeds:        *seeds,
	}
	if *pairs < 24 {
		opt.Pairs = stringsched.Pairs()[:*pairs]
	}
	suite := stringsched.NewSuite(opt)

	var page *stringsched.ReportPage
	if *htmlOut != "" {
		page = stringsched.NewReportPage("Strings (SC'14) reproduction — measured figures")
	}
	render := func(t *stringsched.Table) {
		if *csv {
			fmt.Fprintln(out, t.CSV())
		} else {
			fmt.Fprintln(out, t.Format())
		}
		if page != nil {
			page.AddTable(t)
		}
	}
	runners := []struct {
		name string
		// extra experiments run only when named explicitly, never under
		// -exp all (they change cluster configuration — fault injection —
		// rather than reproduce a paper figure).
		extra bool
		fn    func()
	}{
		{name: "table1", fn: func() { render(suite.TableI()) }},
		{name: "fig1", fn: func() { render(suite.Fig1()) }},
		{name: "fig2", fn: func() {
			o := suite.Fig2().Format(*width)
			fmt.Fprintln(out, o)
			if page != nil {
				page.AddPre("Fig 2: sequential vs concurrent Monte Carlo", o)
			}
		}},
		{name: "fig9", fn: func() { render(suite.Fig9()) }},
		{name: "fig10", fn: func() { render(suite.Fig10()) }},
		{name: "fig11", fn: func() { render(suite.Fig11()) }},
		{name: "fig12", fn: func() { render(suite.Fig12()) }},
		{name: "fig13", fn: func() { render(suite.Fig13()) }},
		{name: "fig14", fn: func() { render(suite.Fig14()) }},
		{name: "fig15", fn: func() { render(suite.Fig15()) }},
		{name: "headline", fn: func() { render(suite.Headline()) }},
		{name: "frag", fn: func() { render(suite.FragPacking()) }},
		{name: "ablations", fn: func() {
			render(suite.AblationContextSwitch())
			render(suite.AblationCopyEngines())
			render(suite.AblationRemoteBandwidth())
			render(suite.AblationLASDecay())
			render(suite.AblationAccountingLag())
			render(suite.AblationArbiter())
			render(suite.AblationAppStyle())
		}},
		{name: "faults", extra: true, fn: func() { render(suite.Faults()) }},
	}

	// Validate -exp before running anything: an unknown name must fail
	// fast, non-zero, and tell the user what would have been accepted.
	want := strings.ToLower(*exp)
	known := want == "all"
	names := make([]string, 0, len(runners)+3)
	names = append(names, "all")
	for _, r := range runners {
		names = append(names, r.name)
		if want == r.name {
			known = true
		}
	}
	names = append(names, "mega", "cluster") // handled above, before benchmark modes
	if !known {
		fmt.Fprintf(errOut, "unknown experiment %q\nvalid experiments: %s\n(faults is opt-in: it is excluded from -exp all and must be named explicitly)\n",
			*exp, strings.Join(names, ", "))
		return 1
	}

	sw := parallel.StartStopwatch()
	for _, r := range runners {
		if (want == "all" && !r.extra) || want == r.name {
			r.fn()
		}
	}
	if page != nil {
		if err := page.WriteFile(*htmlOut); err != nil {
			fmt.Fprintf(errOut, "writing %s: %v\n", *htmlOut, err)
			return 1
		}
		fmt.Fprintf(out, "HTML report written to %s\n", *htmlOut)
	}
	fmt.Fprintf(out, "(%d simulations, %.1fs wall)\n", suite.Runs, sw.Seconds())
	return writeMemProfile()
}
