// strings-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	strings-bench [-exp all|table1|fig1|fig2|fig9|fig10|fig11|fig12|fig13|fig14|fig15|ablations]
//	              [-requests N] [-lambda F] [-seed S] [-pairs N] [-width W]
//
// Each experiment prints the same rows/series as the corresponding table or
// figure in "Scheduling Multi-tenant Cloud Workloads on Accelerator-based
// Systems" (SC'14). Absolute numbers come from the simulated testbed; the
// shapes — which policy wins, by roughly what factor — are the
// reproduction targets.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/stringsched"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, table1, fig1, fig2, fig9..fig15, headline, ablations)")
	requests := flag.Int("requests", 12, "requests per short-job stream")
	lambda := flag.Float64("lambda", 0.6, "mean inter-arrival as a fraction of solo runtime")
	seed := flag.Int64("seed", 1, "simulation seed")
	pairs := flag.Int("pairs", 24, "number of workload pairs (prefix of A..X)")
	width := flag.Int("width", 72, "width of utilization strips")
	workers := flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
	seeds := flag.Int("seeds", 1, "replications per scenario (pooled)")
	csv := flag.Bool("csv", false, "emit tables as CSV instead of aligned text")
	htmlOut := flag.String("html", "", "also write an HTML report with SVG charts to this path")
	flag.Parse()

	opt := stringsched.SuiteOptions{
		Seed:         *seed,
		Requests:     *requests,
		LambdaFactor: *lambda,
		Workers:      *workers,
		Seeds:        *seeds,
	}
	if *pairs < 24 {
		opt.Pairs = stringsched.Pairs()[:*pairs]
	}
	suite := stringsched.NewSuite(opt)

	var page *stringsched.ReportPage
	if *htmlOut != "" {
		page = stringsched.NewReportPage("Strings (SC'14) reproduction — measured figures")
	}
	render := func(t *stringsched.Table) {
		if *csv {
			fmt.Println(t.CSV())
		} else {
			fmt.Println(t.Format())
		}
		if page != nil {
			page.AddTable(t)
		}
	}
	runners := []struct {
		name string
		fn   func()
	}{
		{"table1", func() { render(suite.TableI()) }},
		{"fig1", func() { render(suite.Fig1()) }},
		{"fig2", func() {
			out := suite.Fig2().Format(*width)
			fmt.Println(out)
			if page != nil {
				page.AddPre("Fig 2: sequential vs concurrent Monte Carlo", out)
			}
		}},
		{"fig9", func() { render(suite.Fig9()) }},
		{"fig10", func() { render(suite.Fig10()) }},
		{"fig11", func() { render(suite.Fig11()) }},
		{"fig12", func() { render(suite.Fig12()) }},
		{"fig13", func() { render(suite.Fig13()) }},
		{"fig14", func() { render(suite.Fig14()) }},
		{"fig15", func() { render(suite.Fig15()) }},
		{"headline", func() { render(suite.Headline()) }},
		{"ablations", func() {
			render(suite.AblationContextSwitch())
			render(suite.AblationCopyEngines())
			render(suite.AblationRemoteBandwidth())
			render(suite.AblationLASDecay())
			render(suite.AblationAccountingLag())
			render(suite.AblationArbiter())
			render(suite.AblationAppStyle())
		}},
	}

	want := strings.ToLower(*exp)
	matched := false
	start := time.Now()
	for _, r := range runners {
		if want == "all" || want == r.name {
			matched = true
			r.fn()
		}
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
	if page != nil {
		if err := page.WriteFile(*htmlOut); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *htmlOut, err)
			os.Exit(1)
		}
		fmt.Printf("HTML report written to %s\n", *htmlOut)
	}
	fmt.Printf("(%d simulations, %.1fs wall)\n", suite.Runs, time.Since(start).Seconds())
}
