package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunRejectsInvalidFlags pins the CLI's failure mode: every invalid
// flag value exits 1 and the error names the valid range or alternatives,
// so a typo'd sweep script fails fast instead of silently running the
// wrong configuration.
func TestRunRejectsInvalidFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want []string // substrings the stderr message must contain
	}{
		{"negative shards", []string{"-shards", "-1"},
			[]string{"invalid -shards -1", "0 (classic single-kernel path)", ">= 1"}},
		{"very negative shards", []string{"-shards", "-42"},
			[]string{"invalid -shards -42", "valid range"}},
		{"negative parallel", []string{"-parallel", "-1"},
			[]string{"invalid -parallel -1", ">= 0", "0 = GOMAXPROCS", "1 = sequential"}},
		{"negative workers alias", []string{"-workers", "-3"},
			[]string{"invalid -workers -3", ">= 0", "deprecated alias"}},
		{"unknown experiment", []string{"-exp", "fig99"},
			[]string{"unknown experiment", "table1", "fig9", "mega", "cluster", "faults is opt-in"}},
		{"unknown cluster policy", []string{"-exp", "cluster", "-cluster-policy", "round-robin"},
			[]string{"unknown cluster policy", "least-loaded", "frag"}},
		{"bad cluster spec", []string{"-exp", "cluster", "-cluster-spec", "lunar:rate=1"},
			[]string{"-cluster-spec", "unknown arrival process"}},
		{"unparsable flag", []string{"-requests", "xyz"}, []string{"invalid value"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 1 {
				t.Fatalf("run(%v) = %d, want exit code 1", tc.args, code)
			}
			for _, want := range tc.want {
				if !strings.Contains(stderr.String(), want) {
					t.Errorf("stderr missing %q:\n%s", want, stderr.String())
				}
			}
		})
	}
}

// TestRunExperimentHappyPath runs a small figure sweep end to end and
// checks the table and the closing run count reach stdout.
func TestRunExperimentHappyPath(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{"-exp", "table1", "-requests", "2", "-pairs", "2"}
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("run(%v) = %d, stderr:\n%s", args, code, stderr.String())
	}
	for _, want := range []string{"Table I", "simulations"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout.String())
		}
	}
}

// TestRunClusterMergesBenchKeys runs a small -exp cluster macro-run into a
// bench JSON that already holds foreign keys and checks the cluster_* keys
// merge in without disturbing them — the same read-modify-write contract
// the mega keys honor.
func TestRunClusterMergesBenchKeys(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	if err := os.WriteFile(path, []byte("{\n  \"scenario\": \"keep-me\"\n}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	args := []string{
		"-exp", "cluster", "-bench-json", path,
		"-cluster-spec", "poisson:rate=0.8,horizon=40s,kind=GA,life=12s,lambda=1s",
		"-cluster-policy", "frag",
	}
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("run(%v) = %d, stderr:\n%s", args, code, stderr.String())
	}
	for _, want := range []string{"cluster/least-loaded", "cluster/frag", "identical=true", "cluster_* keys merged"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout.String())
		}
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var merged map[string]any
	if err := json.Unmarshal(blob, &merged); err != nil {
		t.Fatalf("bench JSON unreadable after merge: %v", err)
	}
	if merged["scenario"] != "keep-me" {
		t.Errorf("merge clobbered foreign key scenario = %v", merged["scenario"])
	}
	for _, key := range []string{
		"cluster_scenario", "cluster_policy", "cluster_supernodes", "cluster_born",
		"cluster_placed", "cluster_requests", "cluster_events", "cluster_p50_s",
		"cluster_p99_s", "cluster_fairness", "cluster_identical",
	} {
		if _, ok := merged[key]; !ok {
			t.Errorf("bench JSON missing %s after cluster merge", key)
		}
	}
	if merged["cluster_policy"] != "frag" {
		t.Errorf("cluster_policy = %v, want frag (the -cluster-policy value)", merged["cluster_policy"])
	}
	if merged["cluster_identical"] != true {
		t.Error("cluster_identical is not true: worker invariance broke")
	}
}
