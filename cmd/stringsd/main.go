// stringsd is the backend daemon of the GPU remoting demo: it listens on a
// TCP address and serves the Strings wire protocol, executing marshalled
// CUDA calls against a simulated GPU (one device and one virtual clock per
// connection).
//
// Usage:
//
//	stringsd [-addr :9009] [-device TeslaC2050] [-read-timeout 30s] [-write-timeout 30s]
//
// Pair it with examples/remoting or any client speaking internal/rpcproto.
package main

import (
	"flag"
	"log"
	"net"
	"time"

	"repro/internal/gpu"
	"repro/internal/remoting"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9009", "listen address")
	device := flag.String("device", "TeslaC2050", "device to emulate: Quadro2000, Quadro4000, TeslaC2050, TeslaC2070")
	readTimeout := flag.Duration("read-timeout", 30*time.Second, "per-read deadline on client connections; 0 disables")
	writeTimeout := flag.Duration("write-timeout", 30*time.Second, "per-write deadline on client connections; 0 disables")
	flag.Parse()

	specs := map[string]gpu.Spec{
		"Quadro2000": gpu.Quadro2000,
		"Quadro4000": gpu.Quadro4000,
		"TeslaC2050": gpu.TeslaC2050,
		"TeslaC2070": gpu.TeslaC2070,
	}
	spec, ok := specs[*device]
	if !ok {
		log.Fatalf("unknown device %q", *device)
	}

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("stringsd: serving simulated %s on %s", spec.Name, lis.Addr())
	backend := &remoting.TCPBackend{
		Spec:         spec,
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
	}
	log.Fatal(backend.Serve(lis))
}
