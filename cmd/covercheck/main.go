// covercheck enforces per-package statement-coverage floors on a Go
// coverprofile.
//
// Usage:
//
//	covercheck -profile cover.out [-min 85] [pkg ...]
//
// Each pkg argument names one package import path; a file belongs to the
// argument equal to its package directory, so gating a package does not
// silently absorb its subpackages (repro/internal/analysis gates the
// framework without counting its untested driver/load plumbing). With no
// arguments every package in the profile is gated. Exit status is 1 when
// any gated package falls below the floor, with a per-package report
// either way.
//
// The profile format is one block per line after the mode header:
//
//	import/path/file.go:startLine.startCol,endLine.endCol numStatements hitCount
//
// Statement coverage weights each block by its statement count, matching
// `go tool cover -func` totals.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// pkgCover accumulates one package's statement totals.
type pkgCover struct {
	statements int
	covered    int
}

func (p pkgCover) percent() float64 {
	if p.statements == 0 {
		return 0
	}
	return 100 * float64(p.covered) / float64(p.statements)
}

// parseProfile folds a coverprofile into per-group totals. groups are
// exact package import paths; files outside every group are ignored (gate
// only what was asked for). With no groups, every package gets its own
// row.
func parseProfile(path string, groups []string) (map[string]*pkgCover, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	out := make(map[string]*pkgCover)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "mode:") {
			continue
		}
		// file.go:L.C,L.C numStatements hitCount
		colon := strings.LastIndex(line, ":")
		if colon < 0 {
			return nil, fmt.Errorf("%s:%d: no file separator in %q", path, lineNo, line)
		}
		file := line[:colon]
		fields := strings.Fields(line[colon+1:])
		if len(fields) != 3 {
			return nil, fmt.Errorf("%s:%d: want 'range numstmt count', got %q", path, lineNo, line[colon+1:])
		}
		numStmt, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad statement count: %v", path, lineNo, err)
		}
		hits, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad hit count: %v", path, lineNo, err)
		}

		dir := file
		if slash := strings.LastIndex(file, "/"); slash >= 0 {
			dir = file[:slash]
		}
		key := dir
		if len(groups) > 0 {
			key = ""
			for _, g := range groups {
				if dir == g {
					key = g
					break
				}
			}
			if key == "" {
				continue
			}
		}
		pc := out[key]
		if pc == nil {
			pc = &pkgCover{}
			out[key] = pc
		}
		pc.statements += numStmt
		if hits > 0 {
			pc.covered += numStmt
		}
	}
	return out, sc.Err()
}

func main() {
	profile := flag.String("profile", "", "coverprofile to check (required)")
	min := flag.Float64("min", 85, "minimum statement coverage percentage per package")
	flag.Parse()
	if *profile == "" {
		fmt.Fprintln(os.Stderr, "covercheck: -profile is required")
		os.Exit(2)
	}
	groups := flag.Args()
	cover, err := parseProfile(*profile, groups)
	if err != nil {
		fmt.Fprintf(os.Stderr, "covercheck: %v\n", err)
		os.Exit(2)
	}

	// Every requested package must appear: a gated package that vanished
	// from the profile (deleted tests, build tags) must not pass silently.
	for _, g := range groups {
		if _, ok := cover[g]; !ok {
			cover[g] = &pkgCover{}
		}
	}

	keys := make([]string, 0, len(cover))
	for k := range cover {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	failed := false
	for _, k := range keys {
		pc := cover[k]
		status := "ok  "
		if pc.percent() < *min {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s %-40s %6.1f%% (%d/%d statements, floor %.0f%%)\n",
			status, k, pc.percent(), pc.covered, pc.statements, *min)
	}
	if failed {
		os.Exit(1)
	}
}
