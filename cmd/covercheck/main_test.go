package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeProfile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "cover.out")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const sampleProfile = `mode: set
repro/internal/trace/trace.go:10.2,12.3 3 1
repro/internal/trace/trace.go:14.2,20.3 5 0
repro/internal/trace/jsonl.go:8.2,9.3 2 1
repro/internal/sweep/seed.go:5.2,6.3 4 1
repro/cmd/other/main.go:1.2,2.3 10 0
`

func TestParseProfileGrouping(t *testing.T) {
	path := writeProfile(t, sampleProfile)
	cover, err := parseProfile(path, []string{"repro/internal/trace", "repro/internal/sweep"})
	if err != nil {
		t.Fatal(err)
	}
	tr := cover["repro/internal/trace"]
	if tr == nil || tr.statements != 10 || tr.covered != 5 {
		t.Errorf("trace cover = %+v, want 10 statements, 5 covered", tr)
	}
	sw := cover["repro/internal/sweep"]
	if sw == nil || sw.statements != 4 || sw.covered != 4 {
		t.Errorf("sweep cover = %+v, want 4/4", sw)
	}
	if _, ok := cover["repro/cmd/other"]; ok {
		t.Error("ungated package leaked into the grouped report")
	}
	if got := tr.percent(); got != 50 {
		t.Errorf("trace percent = %v, want 50", got)
	}
}

func TestParseProfileNoGroups(t *testing.T) {
	path := writeProfile(t, sampleProfile)
	cover, err := parseProfile(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cover) != 3 {
		t.Fatalf("got %d packages, want 3: %v", len(cover), cover)
	}
	if pc := cover["repro/cmd/other"]; pc == nil || pc.percent() != 0 {
		t.Errorf("uncovered package percent = %+v, want 0", pc)
	}
}

func TestParseProfileErrors(t *testing.T) {
	for _, bad := range []string{
		"mode: set\nnot-a-block\n",
		"mode: set\nfile.go:1.2,3.4 x 1\n",
		"mode: set\nfile.go:1.2,3.4 1 x\n",
		"mode: set\nfile.go:1.2,3.4 1\n",
	} {
		path := writeProfile(t, bad)
		if _, err := parseProfile(path, nil); err == nil {
			t.Errorf("parseProfile accepted %q", bad)
		}
	}
	if _, err := parseProfile(filepath.Join(t.TempDir(), "missing"), nil); err == nil {
		t.Error("parseProfile accepted a missing file")
	}
}

func TestPercentEmpty(t *testing.T) {
	if p := (pkgCover{}).percent(); p != 0 {
		t.Errorf("empty package percent = %v", p)
	}
}
