// Cloudserver: a multi-tenant GPU cloud server in the paper's service model.
// Three tenants stream different application classes (image processing,
// financial pricing, search-style scans) at one two-GPU node; the example
// sweeps the workload-balancing policies and reports per-tenant latency and
// total device utilization under each.
package main

import (
	"fmt"
	"log"

	"repro/stringsched"
)

func main() {
	streams := []stringsched.StreamSpec{
		{Kind: stringsched.DXTC, Count: 5, LambdaFactor: 0.7, Node: 0, Tenant: 1, Weight: 1},
		{Kind: stringsched.MonteCarlo, Count: 10, LambdaFactor: 0.5, Node: 0, Tenant: 2, Weight: 1},
		{Kind: stringsched.Scan, Count: 6, LambdaFactor: 0.7, Node: 0, Tenant: 3, Weight: 1},
	}

	fmt.Println("Three tenants (DC, MC, SC streams) on one node with two GPUs, Strings runtime")
	fmt.Println()
	fmt.Printf("%-8s %12s %12s %12s %14s\n", "policy", "DC avg", "MC avg", "SC avg", "GPU busy (s)")
	for _, policy := range []string{"GRR", "GMin", "GWtMin", "RTF", "GUF", "DTF", "MBF"} {
		cluster, err := stringsched.NewCluster(stringsched.Config{
			Seed: 7,
			Nodes: []stringsched.NodeConfig{{Devices: []stringsched.DeviceSpec{
				stringsched.Quadro2000, stringsched.TeslaC2050,
			}}},
			Mode:    stringsched.ModeStrings,
			Balance: policy,
		})
		if err != nil {
			log.Fatal(err)
		}
		r, err := cluster.Run(streams)
		if err != nil {
			log.Fatal(err)
		}
		if len(r.Errors) > 0 {
			log.Fatalf("%s: application errors: %v", policy, r.Errors)
		}
		var busy float64
		for _, d := range cluster.Devices() {
			st := d.Stats()
			busy += (float64(st.ComputeBusy) + float64(st.H2DBusy) + float64(st.D2HBusy)) / 1e6
		}
		fmt.Printf("%-8s %12v %12v %12v %14.1f\n", policy,
			r.AvgCompletion(stringsched.DXTC),
			r.AvgCompletion(stringsched.MonteCarlo),
			r.AvgCompletion(stringsched.Scan),
			busy)
	}
	fmt.Println()
	fmt.Println("Feedback policies (RTF..MBF) start as GWtMin and switch once the")
	fmt.Println("Scheduler Feedback Table has per-class history (the Policy Arbiter).")
}
