// Quickstart: a two-GPU server receives a burst of Monte Carlo requests and
// serves them three ways — the bare CUDA runtime (static provisioning), the
// Rain scheduler (per-application backend processes), and Strings (context
// packing + phase-selection scheduling) — then prints the average request
// completion time of each.
package main

import (
	"fmt"
	"log"

	"repro/stringsched"
)

func main() {
	stream := []stringsched.StreamSpec{{
		Kind:         stringsched.MonteCarlo,
		Count:        8,
		LambdaFactor: 0.5, // mean inter-arrival = half the solo runtime
		Node:         0,
		Tenant:       1,
		Weight:       1,
	}}

	configs := []struct {
		label string
		mode  stringsched.Mode
		dev   string
	}{
		{"CUDA runtime (static provisioning)", stringsched.ModeCUDA, ""},
		{"Rain (GMin balancing)", stringsched.ModeRain, "none"},
		{"Strings (GMin balancing + PS scheduling)", stringsched.ModeStrings, "PS"},
	}

	fmt.Println("8 Monte Carlo requests, one node with a Quadro 2000 and a Tesla C2050")
	fmt.Println()
	var baseline stringsched.Time
	for _, c := range configs {
		cluster, err := stringsched.NewCluster(stringsched.Config{
			Seed: 42,
			Nodes: []stringsched.NodeConfig{{Devices: []stringsched.DeviceSpec{
				stringsched.Quadro2000, stringsched.TeslaC2050,
			}}},
			Mode:      c.mode,
			Balance:   "GMin",
			DevPolicy: c.dev,
		})
		if err != nil {
			log.Fatal(err)
		}
		r, err := cluster.Run(stream)
		if err != nil {
			log.Fatal(err)
		}
		if len(r.Errors) > 0 {
			log.Fatalf("application errors: %v", r.Errors)
		}
		avg := r.AvgCompletion(stringsched.MonteCarlo)
		if baseline == 0 {
			baseline = avg
		}
		fmt.Printf("%-44s avg completion %8v   speedup %.2fx\n",
			c.label, avg, float64(baseline)/float64(avg))
	}
}
