// Remoting: GPU remoting over a real TCP socket. The example starts a
// backend daemon hosting a simulated Tesla C2050 on a loopback listener,
// dials it as a frontend, and drives a small CUDA call sequence through the
// marshalled wire protocol — the Figure 3 path (interpose → marshal → RPC →
// dispatch) with actual bytes on an actual socket.
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/netguard"
	"repro/internal/remoting"
	"repro/internal/rpcproto"
)

func call(conn net.Conn, c *rpcproto.Call) *rpcproto.Reply {
	frame, err := rpcproto.EncodeCall(c)
	if err != nil {
		log.Fatal(err)
	}
	if err := rpcproto.WriteFrame(conn, frame); err != nil {
		log.Fatal(err)
	}
	if c.NonBlocking {
		return nil
	}
	body, err := rpcproto.ReadFrame(conn)
	if err != nil {
		log.Fatal(err)
	}
	msg, err := rpcproto.Decode(body)
	if err != nil {
		log.Fatal(err)
	}
	return msg.(*rpcproto.Reply)
}

func main() {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer lis.Close()
	backend := &remoting.TCPBackend{
		Spec:         gpu.TeslaC2050,
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 30 * time.Second,
	}
	go func() { _ = backend.Serve(lis) }()
	fmt.Printf("backend daemon (simulated %s) listening on %s\n\n", gpu.TeslaC2050.Name, lis.Addr())

	// Dial with retries so a slow-starting daemon doesn't fail the client.
	conn, err := netguard.DialRetry("tcp", lis.Addr().String(), 5, 20*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	seq := uint64(0)
	next := func() uint64 { seq++; return seq }

	r := call(conn, &rpcproto.Call{ID: cuda.CallSetDevice, Seq: next(), AppID: 1, KernelName: "MC"})
	fmt.Printf("cudaSetDevice            → err=%q\n", r.Err)

	r = call(conn, &rpcproto.Call{ID: cuda.CallMalloc, Seq: next(), Bytes: 64 << 20})
	fmt.Printf("cudaMalloc(64 MiB)       → ptr=%d\n", r.PtrID)
	ptr := r.PtrID

	r = call(conn, &rpcproto.Call{
		ID: cuda.CallMemcpy, Seq: next(), Dir: cuda.H2D,
		Bytes: 64 << 20, PtrID: ptr, PtrSize: 64 << 20,
	})
	fmt.Printf("cudaMemcpy H2D (64 MiB)  → err=%q (synchronous: virtual clock advanced)\n", r.Err)

	call(conn, &rpcproto.Call{
		ID: cuda.CallLaunch, Seq: next(), KernelName: "monteCarloKernel",
		Compute: 5e8, MemTraffic: 1e8, NonBlocking: true,
	})
	fmt.Println("cudaLaunch               → non-blocking RPC, no reply frame")

	r = call(conn, &rpcproto.Call{ID: cuda.CallDeviceSync, Seq: next()})
	fmt.Printf("cudaDeviceSynchronize    → err=%q\n", r.Err)

	r = call(conn, &rpcproto.Call{ID: cuda.CallThreadExit, Seq: next(), AppID: 1, KernelName: "MC"})
	fb := r.Feedback
	fmt.Printf("cudaThreadExit           → feedback piggybacked:\n")
	fmt.Printf("  session virtual time %v, GPU service %v, transfer time %v\n",
		fb.ExecTime, fb.GPUTime, fb.XferTime)
}
