// Analysis: run a multi-tenant scenario, then use the library's analysis
// surfaces — the per-request JSONL log, tail percentiles, and the HTML/SVG
// report generator — to inspect it the way an operator would.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/stringsched"
)

func main() {
	cluster, err := stringsched.NewCluster(stringsched.Config{
		Seed: 77,
		Nodes: []stringsched.NodeConfig{
			{Devices: []stringsched.DeviceSpec{stringsched.Quadro2000, stringsched.TeslaC2050}},
		},
		Mode:    stringsched.ModeStrings,
		Balance: "MBF",
	})
	if err != nil {
		log.Fatal(err)
	}
	r, err := cluster.Run([]stringsched.StreamSpec{
		{Kind: stringsched.Histogram, Count: 5, LambdaFactor: 0.5, Node: 0, Tenant: 1, Weight: 1},
		{Kind: stringsched.MonteCarlo, Count: 10, LambdaFactor: 0.5, Node: 0, Tenant: 2, Weight: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	if len(r.Errors) > 0 {
		log.Fatalf("application errors: %v", r.Errors)
	}

	// Tail latency per class.
	fmt.Println("latency per class:")
	for _, k := range r.Kinds() {
		fmt.Printf("  %-3v avg %v   p50 %v   p95 %v\n", k,
			r.AvgCompletion(k),
			r.PercentileCompletion(k, 0.5),
			r.PercentileCompletion(k, 0.95))
	}

	// Per-request JSONL log.
	dir := os.TempDir()
	logPath := filepath.Join(dir, "strings-requests.jsonl")
	f, err := os.Create(logPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := r.WriteRequestLog(f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("\nrequest log (%d events) written to %s; first event:\n", len(r.Requests), logPath)
	first := r.SortedRequests()[0]
	fmt.Printf("  app %d (%s) node %d → GID %d: queued %dus, served %dus\n",
		first.AppID, first.KindID, first.Node, first.GID, first.QueueUS, first.ServiceUS)

	// HTML report with an SVG chart of per-class latency.
	tab := &stringsched.Table{
		Title:  "Average completion by class (s)",
		Labels: []string{"HI", "MC"},
	}
	tab.Add("avg", []float64{
		r.AvgCompletion(stringsched.Histogram).Seconds(),
		r.AvgCompletion(stringsched.MonteCarlo).Seconds(),
	})
	tab.Add("p95", []float64{
		r.PercentileCompletion(stringsched.Histogram, 0.95).Seconds(),
		r.PercentileCompletion(stringsched.MonteCarlo, 0.95).Seconds(),
	})
	page := stringsched.NewReportPage("Scenario analysis")
	page.AddTable(tab)
	htmlPath := filepath.Join(dir, "strings-analysis.html")
	if err := page.WriteFile(htmlPath); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HTML report written to %s\n", htmlPath)
}
