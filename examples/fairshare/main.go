// Fairshare: two tenants with 3:1 weights share a single GPU under the TFS
// (True Fair-Share) device scheduler. Both tenants keep the device
// backlogged through a fixed contention window; the example reports each
// tenant's attained GPU service, the weighted allocations, and Jain's
// fairness index — and contrasts the same window under the bare CUDA
// runtime, which has no notion of tenants at all.
package main

import (
	"fmt"
	"log"

	"repro/stringsched"
)

func measure(mode stringsched.Mode, devPolicy string) *stringsched.RunResult {
	cluster, err := stringsched.NewCluster(stringsched.Config{
		Seed: 3,
		Nodes: []stringsched.NodeConfig{
			{Devices: []stringsched.DeviceSpec{stringsched.TeslaC2050}},
		},
		Mode:      mode,
		Balance:   "GRR",
		DevPolicy: devPolicy,
	})
	if err != nil {
		log.Fatal(err)
	}
	r, err := cluster.RunUntil([]stringsched.StreamSpec{
		{Kind: stringsched.Histogram, Count: 10, Lambda: stringsched.Second, Node: 0, Tenant: 1, Weight: 3},
		{Kind: stringsched.MonteCarlo, Count: 40, Lambda: stringsched.Second / 2, Node: 0, Tenant: 2, Weight: 1},
	}, 40*stringsched.Second)
	if err != nil {
		log.Fatal(err)
	}
	return r
}

func main() {
	fmt.Println("Tenant 1 (HI stream, weight 3) vs tenant 2 (MC stream, weight 1),")
	fmt.Println("one Tesla C2050, 40 s contention window")
	fmt.Println()
	for _, sys := range []struct {
		label string
		mode  stringsched.Mode
		dev   string
	}{
		{"bare CUDA runtime", stringsched.ModeCUDA, ""},
		{"Strings + TFS", stringsched.ModeStrings, "TFS"},
	} {
		r := measure(sys.mode, sys.dev)
		s1, s2 := r.TenantService[1], r.TenantService[2]
		alloc := r.FairnessAllocations()
		fmt.Printf("%s:\n", sys.label)
		fmt.Printf("  tenant 1 attained %v, tenant 2 attained %v (ratio %.2f, weights want 3.00)\n",
			s1, s2, float64(s1)/float64(s2))
		fmt.Printf("  weighted allocations %.2fs vs %.2fs → Jain fairness %.3f\n",
			alloc[0]/1e6, alloc[1]/1e6, stringsched.JainFairness(alloc))
		fmt.Println()
	}
}
