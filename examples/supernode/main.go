// Supernode: the paper's emulated high-end server — two dual-GPU nodes
// aggregated into a single four-GPU gPool via GPU remoting. A long-running
// stream arrives at node 0 and a short-running stream at node 1; the
// workload balancer serves both from the whole pool, placing some requests
// on remote GPUs across the interconnect. The example prints the gMap, the
// per-device kernel counts, and the weighted speedup of the memory-bandwidth
// feedback policy over plain round robin.
package main

import (
	"fmt"
	"log"

	"repro/stringsched"
)

func run(balance string) (*stringsched.RunResult, *stringsched.Cluster) {
	cluster, err := stringsched.NewCluster(stringsched.Config{
		Seed: 11,
		Nodes: []stringsched.NodeConfig{
			{Devices: []stringsched.DeviceSpec{stringsched.Quadro2000, stringsched.TeslaC2050}},
			{Devices: []stringsched.DeviceSpec{stringsched.Quadro4000, stringsched.TeslaC2070}},
		},
		Mode:    stringsched.ModeStrings,
		Balance: balance,
	})
	if err != nil {
		log.Fatal(err)
	}
	r, err := cluster.Run([]stringsched.StreamSpec{
		{Kind: stringsched.Histogram, Count: 6, LambdaFactor: 0.5, Node: 0, Tenant: 1, Weight: 1},
		{Kind: stringsched.MonteCarlo, Count: 10, LambdaFactor: 0.5, Node: 1, Tenant: 2, Weight: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	if len(r.Errors) > 0 {
		log.Fatalf("%s: application errors: %v", balance, r.Errors)
	}
	return r, cluster
}

func main() {
	base, cluster := run("GRR")
	fmt.Println("gPool of the emulated supernode (two nodes, four GPUs):")
	fmt.Print(cluster.GMap().String())
	fmt.Println()

	fmt.Println("Per-device work under GRR (HI stream at node 0, MC stream at node 1):")
	for gid, d := range cluster.Devices() {
		st := d.Stats()
		entry, _ := cluster.GMap().Lookup(stringsched.GID(gid))
		fmt.Printf("  GID %d (%s, node %d): %3d kernels, %3d copies\n",
			gid, d.Spec().Name, entry.Node, st.KernelsDone, st.CopiesDone)
	}
	fmt.Println()

	mbf, _ := run("MBF")
	ws := stringsched.WeightedSpeedup(
		[]stringsched.Time{base.AvgCompletion(stringsched.Histogram), base.AvgCompletion(stringsched.MonteCarlo)},
		[]stringsched.Time{mbf.AvgCompletion(stringsched.Histogram), mbf.AvgCompletion(stringsched.MonteCarlo)},
	)
	fmt.Printf("HI avg: GRR %v → MBF %v\n",
		base.AvgCompletion(stringsched.Histogram), mbf.AvgCompletion(stringsched.Histogram))
	fmt.Printf("MC avg: GRR %v → MBF %v\n",
		base.AvgCompletion(stringsched.MonteCarlo), mbf.AvgCompletion(stringsched.MonteCarlo))
	fmt.Printf("weighted speedup of MBF over GRR: %.2fx\n", ws)
}
