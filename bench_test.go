// Package repro's top-level benchmarks regenerate the paper's tables and
// figures, one testing.B per exhibit. Each benchmark executes the figure's
// full simulation sweep per iteration and reports the figure's headline
// number(s) as custom metrics (e.g. the AVG weighted speedup of a policy),
// so `go test -bench=. -benchmem` prints the reproduction alongside its
// simulation cost. Benchmarks use a reduced request count per stream to
// keep iterations fast; `cmd/strings-bench` runs the full-scale versions.
package repro

import (
	"testing"

	"repro/internal/rpcproto"
	"repro/internal/sim"
	"repro/stringsched"
)

// benchSuite builds a fresh suite per iteration (memoization must not leak
// across b.N iterations, or the later iterations would measure cache hits).
func benchSuite() *stringsched.Suite {
	return stringsched.NewSuite(stringsched.SuiteOptions{
		Seed:     1,
		Requests: 8,
		Pairs:    stringsched.Pairs()[:8], // A..H: DC and SC against all of Group B
	})
}

// report pushes a figure's AVG series values as benchmark metrics.
func report(b *testing.B, tab *stringsched.Table, metricSuffix string, series ...string) {
	b.Helper()
	for _, name := range series {
		row := tab.Row(name)
		if row == nil {
			b.Fatalf("series %q missing", name)
		}
		b.ReportMetric(row[len(row)-1], name+metricSuffix)
	}
}

// BenchmarkTableI regenerates Table I (benchmark characteristics measured
// solo on the reference device).
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := stringsched.NewSuite(stringsched.SuiteOptions{Seed: 1, Requests: 4})
		tab := s.TableI()
		if i == 0 {
			// Headline: the transfer-dominated MC row.
			idx := len(tab.Labels) - 3 // MC is third from the end of AllKinds
			b.ReportMetric(tab.Row("GPU Time %")[idx], "MC_gpu_pct")
			b.ReportMetric(tab.Row("Transfer %")[idx], "MC_xfer_pct")
		}
	}
}

// BenchmarkFig1 regenerates Figure 1 (compute/memory utilization bands).
func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := stringsched.NewSuite(stringsched.SuiteOptions{
			Seed: 1, Requests: 4,
			Apps: []stringsched.Kind{stringsched.DXTC, stringsched.MonteCarlo, stringsched.Gaussian},
		})
		tab := s.Fig1()
		if i == 0 {
			b.ReportMetric(tab.Row("Compute %")[0], "DC_compute_pct")
			b.ReportMetric(tab.Row("Compute %")[2], "GA_compute_pct")
		}
	}
}

// BenchmarkFig2 regenerates Figure 2 (sequential vs concurrent Monte Carlo
// utilization).
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := stringsched.NewSuite(stringsched.SuiteOptions{Seed: 1, Requests: 5})
		r := s.Fig2()
		if i == 0 {
			b.ReportMetric(float64(r.SeqGlitches), "seq_glitches")
			b.ReportMetric(float64(r.ConcGlitches), "conc_glitches")
			b.ReportMetric(r.SeqMakespan.Seconds()/r.ConcMakespan.Seconds(), "makespan_ratio")
		}
	}
}

// BenchmarkFig9 regenerates Figure 9 (workload balancing vs the CUDA
// runtime on one two-GPU node). Paper AVG: GRR/GMin/GWtMin-Strings
// 3.10/4.90/4.73×.
func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := stringsched.NewSuite(stringsched.SuiteOptions{
			Seed: 1, Requests: 8,
			Apps: []stringsched.Kind{stringsched.DXTC, stringsched.Scan,
				stringsched.MonteCarlo, stringsched.BlackScholes},
		})
		tab := s.Fig9()
		if i == 0 {
			report(b, tab, "_x", "GRR-Rain", "GRR-Strings", "GMin-Strings")
		}
	}
}

// BenchmarkFig10 regenerates Figure 10 (GPU sharing on the supernode).
// Paper AVG: GRR-Rain 1.60×, GWtMin-Strings 2.88×.
func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := benchSuite().Fig10()
		if i == 0 {
			report(b, tab, "_x", "GRR-Rain", "GWtMin-Strings")
		}
	}
}

// BenchmarkFig11 regenerates Figure 11 (Jain fairness). Paper AVG:
// TFS-Strings 91%, +13% over the CUDA runtime.
func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := stringsched.NewSuite(stringsched.SuiteOptions{
			Seed: 1, Requests: 6, Pairs: stringsched.Pairs()[:4],
		})
		tab := s.Fig11()
		if i == 0 {
			report(b, tab, "_jain", "CUDA", "TFS-Rain", "TFS-Strings")
		}
	}
}

// BenchmarkFig12 regenerates Figure 12 (LAS/PS + GWtMin vs 1-node GRR).
// Paper AVG: 2.18/3.10/2.97×.
func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := benchSuite().Fig12()
		if i == 0 {
			report(b, tab, "_x", "GWtMinLAS-Rain", "GWtMinLAS-Strings", "GWtMinPS-Strings")
		}
	}
}

// BenchmarkFig13 regenerates Figure 13 (scheduling alone vs 4-GPU GRR).
// Paper AVG: 1.40/1.95/1.90×.
func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := benchSuite().Fig13()
		if i == 0 {
			report(b, tab, "_x", "LAS-Rain", "LAS-Strings", "PS-Strings")
		}
	}
}

// BenchmarkFig14 regenerates Figure 14 (RTF/GUF feedback balancing).
// Paper AVG: 2.22/2.51/3.23/3.96×.
func BenchmarkFig14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := benchSuite().Fig14()
		if i == 0 {
			report(b, tab, "_x", "RTF-Rain", "GUF-Rain", "RTF-Strings", "GUF-Strings")
		}
	}
}

// BenchmarkFig15 regenerates Figure 15 (DTF/MBF). Paper AVG: 3.73/4.02×
// vs 1-node GRR (8.70× vs the bare CUDA runtime for MBF).
func BenchmarkFig15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := benchSuite().Fig15()
		if i == 0 {
			report(b, tab, "_x", "DTF-Strings", "MBF-Strings")
		}
	}
}

// BenchmarkAblations runs the design-choice ablations (context-switch cost,
// copy engines, interconnect bandwidth, LAS decay, Policy Arbiter).
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := stringsched.NewSuite(stringsched.SuiteOptions{
			Seed: 1, Requests: 6, Pairs: stringsched.Pairs()[:1],
		})
		ctx := s.AblationContextSwitch()
		net := s.AblationRemoteBandwidth()
		if i == 0 {
			rain := ctx.Row("Rain")
			b.ReportMetric(rain[len(rain)-1]/rain[0], "rain_ctxswitch_degradation")
			ws := net.Row("WS vs 1N-GRR")
			b.ReportMetric(ws[len(ws)-1]/ws[0], "fastnet_over_gige")
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed: virtual
// seconds simulated per wall second for a busy two-GPU node.
func BenchmarkSimulatorThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := stringsched.NewCluster(stringsched.Config{
			Seed: int64(i + 1),
			Nodes: []stringsched.NodeConfig{{Devices: []stringsched.DeviceSpec{
				stringsched.Quadro2000, stringsched.TeslaC2050,
			}}},
			Mode:    stringsched.ModeStrings,
			Balance: "GMin",
		})
		if err != nil {
			b.Fatal(err)
		}
		r, err := c.Run([]stringsched.StreamSpec{{
			Kind: stringsched.MonteCarlo, Count: 6, LambdaFactor: 0.5,
			Node: 0, Tenant: 1, Weight: 1,
		}})
		if err != nil || len(r.Errors) > 0 {
			b.Fatalf("%v %v", err, r.Errors)
		}
		b.ReportMetric(r.EndTime.Seconds(), "virtual_s/op")
	}
}

// BenchmarkTracedRun measures the same throughput scenario with the span
// recorder enabled — the cost of full-path observability. Compare its
// ns/op and allocs/op against BenchmarkSimulatorThroughput: the delta is
// the tracing overhead, which the disabled path must not pay (see
// BenchmarkRecorderDisabled in internal/trace for the 0-alloc proof).
func BenchmarkTracedRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec := stringsched.NewTraceRecorder()
		c, err := stringsched.NewCluster(stringsched.Config{
			Seed: int64(i + 1),
			Nodes: []stringsched.NodeConfig{{Devices: []stringsched.DeviceSpec{
				stringsched.Quadro2000, stringsched.TeslaC2050,
			}}},
			Mode:     stringsched.ModeStrings,
			Balance:  "GMin",
			Recorder: rec,
		})
		if err != nil {
			b.Fatal(err)
		}
		r, err := c.Run([]stringsched.StreamSpec{{
			Kind: stringsched.MonteCarlo, Count: 6, LambdaFactor: 0.5,
			Node: 0, Tenant: 1, Weight: 1,
		}})
		if err != nil || len(r.Errors) > 0 {
			b.Fatalf("%v %v", err, r.Errors)
		}
		if i == 0 {
			b.ReportMetric(float64(rec.Len()), "spans/op")
		}
	}
}

// BenchmarkKernelDispatch measures raw event-loop overhead: 64 processes on
// staggered sleep cadences, so every dispatch goes through the future heap
// and a real park/resume handoff. Reports ns/event.
func BenchmarkKernelDispatch(b *testing.B) {
	const procs = 64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel(1)
		for p := 0; p < procs; p++ {
			period := sim.Time(1 + p%7)
			k.Go("p", func(pr *sim.Proc) {
				for t := 0; t < 256; t++ {
					pr.Sleep(period)
				}
			})
		}
		k.Run()
		if i == 0 {
			b.ReportMetric(float64(k.Dispatched()), "events/op")
		}
	}
}

// BenchmarkQueuePingPong measures the baton-passing handoff through
// sim.Queue: a producer and a consumer alternating through a pair of
// depth-one queues, the pattern behind every interposer→scheduler exchange.
func BenchmarkQueuePingPong(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel(1)
		ping := sim.NewQueue[int](k)
		pong := sim.NewQueue[int](k)
		const rounds = 4096
		k.Go("ping", func(p *sim.Proc) {
			for r := 0; r < rounds; r++ {
				ping.Put(r)
				pong.Get(p)
			}
		})
		k.Go("pong", func(p *sim.Proc) {
			for r := 0; r < rounds; r++ {
				v := ping.Get(p)
				pong.Put(v)
			}
		})
		k.Run()
	}
}

// BenchmarkCodecRoundTrip measures one full call+reply wire round trip with
// reused buffers, structs and an interner. Steady state must report
// 0 allocs/op — the codec's zero-copy acceptance criterion.
func BenchmarkCodecRoundTrip(b *testing.B) {
	call := &rpcproto.Call{
		ID: 7, Seq: 1, AppID: 3, TenantID: 2, Weight: 4,
		KernelName: "monteCarloKernel", Compute: 5e8, MemTraffic: 1e8,
	}
	reply := &rpcproto.Reply{Seq: 1, Feedback: &rpcproto.Feedback{
		AppID: 3, Kind: "MC", MemBW: 0.42,
	}}
	cbuf := make([]byte, 0, rpcproto.CallWireSize(call))
	rbuf := make([]byte, 0, rpcproto.ReplyWireSize(reply))
	var gotCall rpcproto.Call
	var gotReply rpcproto.Reply
	var names rpcproto.Interner
	// Warm up: fill the interner and let the reply's Feedback struct be
	// allocated once, so the timed loop measures pure steady state.
	if cb, err := rpcproto.AppendCall(cbuf[:0], call); err == nil {
		_ = rpcproto.DecodeCallInto(&gotCall, cb[4:], &names)
	}
	if rb, err := rpcproto.AppendReply(rbuf[:0], reply); err == nil {
		_ = rpcproto.DecodeReplyInto(&gotReply, rb[4:], &names)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cb, err := rpcproto.AppendCall(cbuf[:0], call)
		if err != nil {
			b.Fatal(err)
		}
		if err := rpcproto.DecodeCallInto(&gotCall, cb[4:], &names); err != nil {
			b.Fatal(err)
		}
		rb, err := rpcproto.AppendReply(rbuf[:0], reply)
		if err != nil {
			b.Fatal(err)
		}
		if err := rpcproto.DecodeReplyInto(&gotReply, rb[4:], &names); err != nil {
			b.Fatal(err)
		}
	}
	if gotCall.KernelName != call.KernelName || gotReply.Feedback == nil {
		b.Fatal("round trip corrupted data")
	}
}
